//! Behavioural tests for the crossbar array simulator.

use memlp_crossbar::{Crossbar, CrossbarConfig, CrossbarError, FaultModel, Fidelity, ReadoutMode};
use memlp_linalg::{ops, Matrix};

fn test_matrix() -> Matrix {
    Matrix::from_rows(&[
        &[4.0, 1.0, 0.5, 0.0],
        &[1.0, 3.0, 1.0, 0.2],
        &[0.0, 1.0, 2.0, 1.0],
        &[0.3, 0.0, 1.0, 2.5],
    ])
    .expect("well-formed")
}

#[test]
fn ideal_mvm_matches_exact() {
    let mut xb = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let x = [1.0, -0.5, 2.0, 0.25];
    let y = xb.mvm(&x).unwrap();
    let exact = a.matvec(&x);
    for (got, want) in y.iter().zip(&exact) {
        assert!((got - want).abs() < 1e-3, "{got} vs {want}");
    }
}

#[test]
fn ideal_transposed_mvm_matches_exact() {
    // Rectangular on purpose: the transposed read swaps the roles of the
    // word and bit lines, so shapes must follow the realized matrix.
    let mut xb = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    let a = Matrix::from_rows(&[
        &[2.0, 0.5, 0.0, 1.0, 0.3],
        &[0.0, 3.0, 1.0, 0.0, 0.7],
        &[1.0, 0.0, 2.5, 0.4, 0.0],
    ])
    .expect("well-formed");
    xb.program(&a).unwrap();
    let y = [1.0, -0.5, 2.0];
    let x = xb.mvm_transposed(&y).unwrap();
    assert_eq!(x.len(), 5);
    let exact = a.matvec_transposed(&y);
    for (got, want) in x.iter().zip(&exact) {
        assert!((got - want).abs() < 1e-3, "{got} vs {want}");
    }
    // Wrong input length (column count instead of row count) is rejected.
    assert!(xb.mvm_transposed(&[1.0; 5]).is_err());
}

#[test]
fn ideal_solve_matches_exact() {
    let mut xb = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let b = [1.0, 2.0, 3.0, 4.0];
    let x = xb.solve(&b).unwrap();
    let back = a.matvec(&x);
    for (got, want) in back.iter().zip(&b) {
        assert!((got - want).abs() < 1e-2, "{got} vs {want}");
    }
}

#[test]
fn eight_bit_io_introduces_bounded_error() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let x = [1.0, 0.5, 0.25, 0.125];
    let y = xb.mvm(&x).unwrap();
    let exact = a.matvec(&x);
    let scale = ops::inf_norm(&exact);
    for (got, want) in y.iter().zip(&exact) {
        let rel = (got - want).abs() / scale;
        assert!(rel < 0.02, "8-bit error {rel} too large");
    }
}

#[test]
fn variation_perturbs_results_but_not_wildly() {
    let cfg = CrossbarConfig::paper_default()
        .with_variation(10.0)
        .with_seed(11);
    let mut xb = Crossbar::new(8, cfg).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let x = [1.0, 1.0, 1.0, 1.0];
    let y = xb.mvm(&x).unwrap();
    let exact = a.matvec(&x);
    let mut any_different = false;
    for (got, want) in y.iter().zip(&exact) {
        let rel = (got - want).abs() / want.abs().max(1.0);
        assert!(rel < 0.25, "variation error {rel} too large");
        if rel > 1e-6 {
            any_different = true;
        }
    }
    assert!(
        any_different,
        "10% variation should visibly perturb results"
    );
}

#[test]
fn realized_matrix_within_variation_band() {
    let cfg = CrossbarConfig::paper_default()
        .with_variation(20.0)
        .with_seed(3);
    let mut xb = Crossbar::new(8, cfg).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let r = xb.realized().unwrap();
    for i in 0..4 {
        for j in 0..4 {
            let t = a[(i, j)];
            let got = r[(i, j)];
            assert!(
                (got - t).abs() <= 0.20 * t + 1e-12,
                "realized {got} outside 20% of target {t}"
            );
        }
    }
}

#[test]
fn rejects_negative_coefficients() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 1.0]]).unwrap();
    let err = xb.program(&a).unwrap_err();
    assert!(matches!(
        err,
        CrossbarError::NegativeCoefficient { row: 0, col: 1, .. }
    ));
}

#[test]
fn rejects_oversized_matrix() {
    let mut xb = Crossbar::new(2, CrossbarConfig::paper_default()).unwrap();
    let err = xb.program(&Matrix::identity(3)).unwrap_err();
    assert!(matches!(
        err,
        CrossbarError::SizeExceeded {
            requested: 3,
            capacity: 2
        }
    ));
}

#[test]
fn creation_respects_max_size() {
    let cfg = CrossbarConfig {
        max_size: 64,
        ..CrossbarConfig::paper_default()
    };
    assert!(Crossbar::new(64, cfg).is_ok());
    assert!(matches!(
        Crossbar::new(65, cfg),
        Err(CrossbarError::SizeExceeded { .. })
    ));
}

#[test]
fn operations_require_programming() {
    let mut xb = Crossbar::new(4, CrossbarConfig::paper_default()).unwrap();
    assert!(matches!(
        xb.mvm(&[1.0; 4]),
        Err(CrossbarError::NotProgrammed)
    ));
    assert!(matches!(
        xb.solve(&[1.0; 4]),
        Err(CrossbarError::NotProgrammed)
    ));
    assert!(matches!(
        xb.update_cells(&[(0, 0, 1.0)]),
        Err(CrossbarError::NotProgrammed)
    ));
}

#[test]
fn shape_mismatches_rejected() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    xb.program(&test_matrix()).unwrap();
    assert!(matches!(
        xb.mvm(&[1.0; 3]),
        Err(CrossbarError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        xb.solve(&[1.0; 5]),
        Err(CrossbarError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        xb.update_cells(&[(9, 0, 1.0)]),
        Err(CrossbarError::ShapeMismatch { .. })
    ));
}

#[test]
fn solve_requires_square() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    let rect = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
    xb.program(&rect).unwrap();
    assert!(matches!(
        xb.solve(&[1.0, 2.0]),
        Err(CrossbarError::ShapeMismatch { .. })
    ));
    // But MVM works on rectangles.
    assert_eq!(xb.mvm(&[1.0, 0.0, 0.0]).unwrap().len(), 2);
}

#[test]
fn update_cells_moves_target_and_costs_run_phase() {
    let mut xb = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let setup_writes = xb.ledger().counts().setup_writes;
    assert_eq!(setup_writes, 16);
    assert_eq!(xb.ledger().counts().update_writes, 0);

    xb.update_cells(&[(0, 0, 2.0), (1, 1, 1.5)]).unwrap();
    assert_eq!(xb.ledger().counts().update_writes, 2);
    assert_eq!(xb.ledger().counts().setup_writes, 16);

    let x = [1.0, 0.0, 0.0, 0.0];
    let y = xb.mvm(&x).unwrap();
    assert!(
        (y[0] - 2.0).abs() < 0.02,
        "updated cell should read back ≈2.0, got {}",
        y[0]
    );
}

#[test]
fn update_cells_rejects_negative() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    xb.program(&test_matrix()).unwrap();
    assert!(matches!(
        xb.update_cells(&[(0, 0, -1.0)]),
        Err(CrossbarError::NegativeCoefficient { .. })
    ));
}

#[test]
fn values_above_full_scale_saturate() {
    let mut xb = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    xb.program(&test_matrix()).unwrap(); // full scale = 4.0
    xb.update_cells(&[(0, 1, 100.0)]).unwrap();
    let r = xb.realized().unwrap();
    assert!(
        r[(0, 1)] <= 4.0 + 1e-9,
        "saturation at a_max expected, got {}",
        r[(0, 1)]
    );
}

#[test]
fn ledger_charges_analog_ops() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    xb.program(&test_matrix()).unwrap();
    xb.mvm(&[1.0; 4]).unwrap();
    xb.solve(&[1.0; 4]).unwrap();
    let c = xb.ledger().counts();
    assert_eq!(c.mvm_ops, 1);
    assert_eq!(c.solve_ops, 1);
    assert_eq!(c.adc_samples, 8);
    assert_eq!(c.dac_samples, 8);
    assert!(xb.ledger().run_time_s() > 0.0);
    assert!(xb.ledger().energy_j(&xb.config().cost.clone()) > 0.0);
}

#[test]
fn circuit_fidelity_close_to_functional_when_calibrated() {
    let a = test_matrix();
    let x = [0.8, -0.3, 1.0, 0.5];

    let mut func = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    func.program(&a).unwrap();
    let yf = func.mvm(&x).unwrap();

    let cfg = CrossbarConfig {
        fidelity: Fidelity::Circuit,
        ..CrossbarConfig::ideal()
    };
    let mut circ = Crossbar::new(8, cfg).unwrap();
    circ.program(&a).unwrap();
    let yc = circ.mvm(&x).unwrap();

    let scale = ops::inf_norm(&yf).max(1e-9);
    for (f, c) in yf.iter().zip(&yc) {
        assert!(
            (f - c).abs() / scale < 0.02,
            "calibrated circuit MVM {c} vs functional {f}"
        );
    }
}

#[test]
fn circuit_transposed_fidelity_close_to_functional_when_calibrated() {
    let a = test_matrix();
    let y = [0.8, -0.3, 1.0, 0.5];

    let mut func = Crossbar::new(8, CrossbarConfig::ideal()).unwrap();
    func.program(&a).unwrap();
    let xf = func.mvm_transposed(&y).unwrap();

    let cfg = CrossbarConfig {
        fidelity: Fidelity::Circuit,
        ..CrossbarConfig::ideal()
    };
    let mut circ = Crossbar::new(8, cfg).unwrap();
    circ.program(&a).unwrap();
    let xc = circ.mvm_transposed(&y).unwrap();

    let scale = ops::inf_norm(&xf).max(1e-9);
    for (f, c) in xf.iter().zip(&xc) {
        assert!(
            (f - c).abs() / scale < 0.02,
            "calibrated circuit transposed MVM {c} vs functional {f}"
        );
    }
}

#[test]
fn raw_divider_readout_is_less_accurate_than_calibrated() {
    let a = test_matrix();
    let x = [0.8, 0.3, 1.0, 0.5];
    let exact = a.matvec(&x);
    let scale = ops::inf_norm(&exact);

    let base = CrossbarConfig {
        fidelity: Fidelity::Circuit,
        ..CrossbarConfig::ideal()
    };
    let mut cal = Crossbar::new(8, base).unwrap();
    cal.program(&a).unwrap();
    let ycal = cal.mvm(&x).unwrap();

    let raw_cfg = CrossbarConfig {
        readout: ReadoutMode::RawDivider,
        ..base
    };
    let mut raw = Crossbar::new(8, raw_cfg).unwrap();
    raw.program(&a).unwrap();
    let yraw = raw.mvm(&x).unwrap();

    let err_cal: f64 = ycal
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / scale;
    let err_raw: f64 = yraw
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / scale;
    assert!(
        err_raw > err_cal,
        "raw {err_raw} should exceed calibrated {err_cal}"
    );
}

#[test]
fn circuit_solve_recovers_solution() {
    let cfg = CrossbarConfig {
        fidelity: Fidelity::Circuit,
        ..CrossbarConfig::ideal()
    };
    let mut xb = Crossbar::new(8, cfg).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let b = [1.0, 2.0, 3.0, 4.0];
    let x = xb.solve(&b).unwrap();
    let back = a.matvec(&x);
    // The g_off parasitic is a real, uncorrected circuit effect; allow a
    // few percent.
    for (got, want) in back.iter().zip(&b) {
        assert!((got - want).abs() / 4.0 < 0.06, "{got} vs {want}");
    }
}

#[test]
fn stuck_off_faults_zero_out_cells() {
    let cfg = CrossbarConfig {
        faults: FaultModel::new(0.0, 1.0).unwrap(),
        ..CrossbarConfig::ideal()
    };
    let mut xb = Crossbar::new(8, cfg).unwrap();
    xb.program(&test_matrix()).unwrap();
    let y = xb.mvm(&[1.0; 4]).unwrap();
    assert!(
        ops::inf_norm(&y) < 1e-12,
        "all-stuck-off array must output zero"
    );
}

#[test]
fn deterministic_for_fixed_seed() {
    let cfg = CrossbarConfig::paper_default()
        .with_variation(20.0)
        .with_seed(99);
    let run = || {
        let mut xb = Crossbar::new(8, cfg).unwrap();
        xb.program(&test_matrix()).unwrap();
        xb.mvm(&[1.0, 2.0, 3.0, 4.0]).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        let cfg = CrossbarConfig::paper_default()
            .with_variation(20.0)
            .with_seed(seed);
        let mut xb = Crossbar::new(8, cfg).unwrap();
        xb.program(&test_matrix()).unwrap();
        xb.mvm(&[1.0, 2.0, 3.0, 4.0]).unwrap()
    };
    assert_ne!(mk(1), mk(2));
}

// ----- delta programming ----------------------------------------------------

#[test]
fn program_delta_skips_unchanged_cells() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let setup = xb.ledger().counts().setup_writes;
    assert_eq!(setup, 16, "full program writes every cell");

    // Identical matrix: every cell's code is unchanged.
    xb.program_delta(&a).unwrap();
    assert_eq!(xb.ledger().counts().update_writes, 0);
    assert_eq!(xb.ledger().counts().skipped_writes, 16);

    // One materially changed cell writes exactly one cell.
    let mut b = a.clone();
    b[(2, 2)] = 3.7;
    xb.program_delta(&b).unwrap();
    assert_eq!(xb.ledger().counts().update_writes, 1);
    assert_eq!(xb.ledger().counts().skipped_writes, 31);
    let r = xb.realized().unwrap();
    assert!((r[(2, 2)] - 3.7).abs() <= 3.7 / 4096.0 + 1e-12);
}

#[test]
fn program_delta_matches_full_reprogram_bitwise_when_fault_free() {
    // Same seed, same write sequence: the delta path must realize exactly
    // what wholesale re-programming realizes, at zero variation and under
    // a 20% redraw regime for the cells it does write.
    let a = test_matrix();
    let mut b = a.clone();
    b[(0, 0)] = 3.1;
    b[(3, 3)] = 1.9;

    let cfg = CrossbarConfig::paper_default().with_seed(5);
    let mut with_delta = Crossbar::new(8, cfg).unwrap();
    with_delta.program(&a).unwrap();
    with_delta.program_delta(&b).unwrap();

    let mut without = Crossbar::new(8, cfg.with_delta_writes(false)).unwrap();
    without.program(&a).unwrap();
    without.program_delta(&b).unwrap();

    let bits = |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
    assert_eq!(
        bits(with_delta.realized().unwrap()),
        bits(without.realized().unwrap())
    );
}

#[test]
fn program_delta_rejects_shape_change_and_unprogrammed() {
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    assert!(matches!(
        xb.program_delta(&test_matrix()),
        Err(CrossbarError::NotProgrammed)
    ));
    xb.program(&test_matrix()).unwrap();
    assert!(matches!(
        xb.program_delta(&Matrix::identity(3)),
        Err(CrossbarError::ShapeMismatch { .. })
    ));
}

#[test]
fn program_delta_sub_lsb_drift_is_free() {
    // Nudging every coefficient by much less than one 8-bit code step is
    // the common late-PDIP case: nothing should be written.
    let mut xb = Crossbar::new(8, CrossbarConfig::paper_default()).unwrap();
    let a = test_matrix();
    xb.program(&a).unwrap();
    let nudged = Matrix::from_fn(4, 4, |i, j| a[(i, j)] * (1.0 + 1e-7));
    xb.program_delta(&nudged).unwrap();
    assert_eq!(xb.ledger().counts().update_writes, 0);
}
