//! Property-based tests for the crossbar simulator.

use memlp_crossbar::{Crossbar, CrossbarConfig, Quantizer};
use memlp_linalg::Matrix;
use proptest::prelude::*;

fn nonneg_matrix(side: usize, seed: u64) -> Matrix {
    Matrix::from_fn(side, side, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(seed);
        0.05 + (h % 1000) as f64 / 1000.0 + if i == j { 2.0 } else { 0.0 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantization never moves a value by more than half a step of its
    /// vector's full-scale range.
    #[test]
    fn quantizer_error_bound(bits in 2u32..16, values in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        let q = Quantizer::new(bits);
        let full = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let out = q.quantize_vec(&values);
        for (a, b) in values.iter().zip(&out) {
            prop_assert!((a - b).abs() <= q.max_error(full) + 1e-12);
        }
    }

    /// Quantization is idempotent and order-preserving.
    #[test]
    fn quantizer_idempotent_monotone(bits in 2u32..12, mut values in proptest::collection::vec(-10.0f64..10.0, 2..32)) {
        let q = Quantizer::new(bits);
        let once = q.quantize_vec(&values);
        let twice = q.quantize_vec(&once);
        prop_assert_eq!(&once, &twice);
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let sorted_q = q.quantize_vec(&values);
        for w in sorted_q.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    /// Realized values stay inside the Eqn-18 variation band (widened by
    /// the 12-bit write-code rounding of `paper_default`).
    #[test]
    fn realized_within_variation_band(side in 2usize..12, var in 0.0f64..25.0, seed in 0u64..1000) {
        let a = nonneg_matrix(side, seed);
        let cfg = CrossbarConfig::paper_default().with_variation(var).with_seed(seed);
        let mut xb = Crossbar::new(side, cfg).unwrap();
        xb.program(&a).unwrap();
        let r = xb.realized().unwrap();
        let frac = var / 100.0;
        let band = frac + (1.0 + frac) / 4096.0;
        for i in 0..side {
            for j in 0..side {
                let t = a[(i, j)];
                prop_assert!((r[(i, j)] - t).abs() <= band * t + 1e-12,
                    "cell ({}, {}): {} vs {} at {}%", i, j, r[(i, j)], t, var);
            }
        }
    }

    /// Solve then multiply returns the (quantized) right-hand side on
    /// ideal hardware.
    #[test]
    fn solve_mvm_roundtrip_ideal(side in 2usize..10, seed in 0u64..500) {
        let a = nonneg_matrix(side, seed);
        let mut xb = Crossbar::new(side, CrossbarConfig::ideal().with_seed(seed)).unwrap();
        xb.program(&a).unwrap();
        let b: Vec<f64> = (0..side).map(|i| 1.0 + (i % 3) as f64).collect();
        let x = xb.solve(&b).unwrap();
        let back = a.matvec(&x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 5e-3 * w.abs().max(1.0), "{} vs {}", g, w);
        }
    }

    /// The ledger's write counter equals cells programmed plus cells
    /// updated, independent of values.
    #[test]
    fn ledger_write_accounting(side in 2usize..10, updates in 0usize..20, seed in 0u64..100) {
        let a = nonneg_matrix(side, seed);
        let mut xb = Crossbar::new(side, CrossbarConfig::paper_default().with_seed(seed)).unwrap();
        xb.program(&a).unwrap();
        let cells: Vec<(usize, usize, f64)> =
            (0..updates).map(|k| (k % side, (k * 7) % side, 0.5)).collect();
        xb.update_cells(&cells).unwrap();
        let c = xb.ledger().counts();
        prop_assert_eq!(c.setup_writes, (side * side) as u64);
        prop_assert_eq!(c.update_writes, updates as u64);
    }
}
