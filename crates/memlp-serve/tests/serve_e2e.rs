//! End-to-end robustness scenarios against a real in-process server:
//! warm-context reuse, budget degradation, overload shedding, graceful
//! drain, and replayability of the single-worker configuration.
//!
//! Connections use real sockets on a loopback ephemeral port; servers and
//! clients are separate OS threads, exactly as in production. Timing
//! never decides correctness: assertions are on protocol outcomes
//! ("every request got exactly one response"), not on who won a race.

use memlp_core::BudgetCause;
use memlp_crossbar::CrossbarConfig;
use memlp_lp::{generator::RandomLp, LpStatus};
use memlp_serve::codec::{Request, Response, SolveJob};
use memlp_serve::{ServeClient, ServeConfig, ServeSolver, Server};

/// Builds a solve job from a deterministic random LP.
fn job(family: &str, m: usize, seed: u64, max_iters: u32, deadline_ticks: u32) -> SolveJob {
    let lp = RandomLp::paper(m, seed).feasible();
    SolveJob {
        family: family.to_string(),
        rows: lp.num_constraints() as u32,
        cols: lp.num_vars() as u32,
        a: lp.a().as_slice().to_vec(),
        b: lp.b().to_vec(),
        c: lp.c().to_vec(),
        max_iters,
        deadline_ticks,
    }
}

fn config() -> ServeConfig {
    ServeConfig::default().with_crossbar(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(41),
    )
}

fn expect_solution(resp: Response) -> memlp_serve::codec::SolutionBody {
    match resp {
        Response::Solution(s) => s,
        other => panic!("expected a solution, got {other:?}"),
    }
}

#[test]
fn warm_repeats_hit_the_delta_cache() {
    let server = Server::bind("127.0.0.1:0", config()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    let health = client.health().expect("health");
    assert!(health.ready && !health.draining);
    assert_eq!(health.completed, 0);

    let cold = expect_solution(client.solve(job("fam", 16, 3, 0, 0)).unwrap());
    assert_eq!(cold.status, LpStatus::Optimal);
    assert!(!cold.warm_start, "first solve of a family must be cold");
    assert!(cold.cells_written > 0);

    let warm = expect_solution(client.solve(job("fam", 16, 3, 0, 0)).unwrap());
    assert_eq!(warm.status, LpStatus::Optimal);
    assert!(warm.warm_start, "repeat solve must start from the pool");
    assert!(
        warm.cells_skipped > 0,
        "repeat solve must skip unchanged cells via the delta cache"
    );
    assert!(
        warm.cells_written < cold.cells_written,
        "warm solve wrote {} cells, cold wrote {}",
        warm.cells_written,
        cold.cells_written
    );

    // A different family gets its own (cold) array.
    let other = expect_solution(client.solve(job("other", 16, 4, 0, 0)).unwrap());
    assert!(!other.warm_start);

    assert_eq!(client.health().unwrap().completed, 3);
    server.shutdown();
}

#[test]
fn exhausted_budgets_degrade_with_best_iterate() {
    let server = Server::bind("127.0.0.1:0", config()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // Iteration-tick deadline: expires mid-solve, deterministically.
    let by_deadline = expect_solution(client.solve(job("d", 16, 5, 0, 3)).unwrap());
    assert_eq!(by_deadline.degraded, Some(BudgetCause::DeadlineExceeded));
    assert_eq!(by_deadline.status, LpStatus::IterationLimit);
    assert!(
        !by_deadline.x.is_empty() && by_deadline.x.iter().all(|v| v.is_finite()),
        "degraded response must still carry the best iterate"
    );

    // Hard iteration cap.
    let by_cap = expect_solution(client.solve(job("d", 16, 5, 2, 0)).unwrap());
    assert_eq!(by_cap.degraded, Some(BudgetCause::MaxIters));
    assert!(by_cap.iterations <= 2);

    // Ample budget: not degraded.
    let fine = expect_solution(client.solve(job("d", 16, 5, 10_000, 10_000)).unwrap());
    assert_eq!(fine.degraded, None);
    assert_eq!(fine.status, LpStatus::Optimal);
    server.shutdown();
}

#[test]
fn burst_above_queue_capacity_sheds_but_never_drops() {
    let server =
        Server::bind("127.0.0.1:0", config().with_queue_depth(1).with_workers(1)).expect("bind");
    let addr = server.addr().to_string();

    // Post a burst from independent connections without reading any
    // response: admission happens per connection thread, so the pushes
    // race a single busy worker (m = 48 keeps it busy for milliseconds).
    const BURST: usize = 6;
    let mut clients: Vec<ServeClient> = (0..BURST)
        .map(|_| ServeClient::connect(&addr).expect("connect"))
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.send(&Request::Solve(job("burst", 48, 100 + i as u64, 0, 0)))
            .expect("send");
    }

    // Every request gets exactly one response — shed or solved, never
    // hung, never dropped.
    let mut solved = 0usize;
    let mut shed = 0usize;
    for c in &mut clients {
        match c.recv().expect("each request must be answered") {
            Response::Solution(s) => {
                assert_eq!(s.status, LpStatus::Optimal);
                solved += 1;
            }
            Response::Overloaded {
                retry_after_hint_ms,
                queue_depth,
            } => {
                assert!(retry_after_hint_ms > 0, "hint must suggest a backoff");
                assert!(queue_depth >= 1);
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(solved + shed, BURST);
    assert!(
        shed >= 1,
        "burst of {BURST} against a depth-1 queue must shed at least once"
    );
    assert!(solved >= 1, "the admitted head of the burst must complete");

    // The shed was transient: once the burst clears, service resumes.
    let mut after = ServeClient::connect(&addr).expect("connect");
    let s = expect_solution(after.solve(job("burst", 48, 200, 0, 0)).unwrap());
    assert_eq!(s.status, LpStatus::Optimal);
    server.shutdown();
}

#[test]
fn drain_completes_inflight_work_then_stops() {
    let server = Server::bind("127.0.0.1:0", config().with_queue_depth(8)).expect("bind");
    let addr = server.addr().to_string();

    // Two in-flight jobs, posted but unread.
    let mut a = ServeClient::connect(&addr).expect("connect");
    let mut b = ServeClient::connect(&addr).expect("connect");
    a.send(&Request::Solve(job("drain", 24, 9, 0, 0))).unwrap();
    b.send(&Request::Solve(job("drain", 24, 10, 0, 0))).unwrap();
    // Let the connection threads admit both before closing the queue.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut ctl = ServeClient::connect(&addr).expect("connect");
    let completed = ctl.drain().expect("drain must ack");
    assert_eq!(
        completed, 2,
        "drain acks only after in-flight work finished"
    );

    // The admitted jobs were completed, not dropped.
    assert_eq!(expect_solution(a.recv().unwrap()).status, LpStatus::Optimal);
    assert_eq!(expect_solution(b.recv().unwrap()).status, LpStatus::Optimal);

    // The server stopped on its own: wait() joins without force-stop.
    server.wait();
}

/// A single-worker server fed the same request sequence twice (fresh
/// process state each time) answers bitwise identically — the serve-path
/// extension of the repo's determinism regime.
#[test]
fn single_worker_serving_is_replayable() {
    let run = || {
        let server = Server::bind("127.0.0.1:0", config()).expect("bind");
        let addr = server.addr().to_string();
        let mut client = ServeClient::connect(&addr).expect("connect");
        let mut out = Vec::new();
        for (seed, ticks) in [(3u64, 0u32), (3, 0), (5, 4), (7, 0)] {
            let s = expect_solution(client.solve(job("fam", 16, seed, 0, ticks)).unwrap());
            out.push((
                s.status,
                s.degraded,
                s.objective.to_bits(),
                s.iterations,
                s.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                s.cells_written,
                s.cells_skipped,
            ));
        }
        server.shutdown();
        out
    };
    assert_eq!(run(), run(), "same requests, same bits");
}

/// The first-order worker family: PDHG solves served from the same warm
/// pool. Repeats must warm-start from the previous PDHG iterate and skip
/// every unchanged setup write — the first-order backend performs no
/// update writes at all, so a warm repeat costs zero write endurance.
#[test]
fn pdhg_workers_serve_warm_repeats() {
    let server =
        Server::bind("127.0.0.1:0", config().with_solver(ServeSolver::Pdhg)).expect("bind");
    let addr = server.addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    let cold = expect_solution(client.solve(job("fam", 16, 3, 0, 0)).unwrap());
    assert_eq!(cold.status, LpStatus::Optimal);
    assert!(!cold.warm_start);
    assert!(cold.cells_written > 0);

    let warm = expect_solution(client.solve(job("fam", 16, 3, 0, 0)).unwrap());
    assert_eq!(warm.status, LpStatus::Optimal);
    assert!(warm.warm_start, "repeat must start from the pooled iterate");
    // PDHG programs only the static sign-split blocks, so an identical
    // repeat re-offers nothing new: every write is delta-skipped and the
    // warm request consumes zero write endurance.
    assert_eq!(
        warm.cells_written, 0,
        "a PDHG repeat must be write-free, wrote {} cells",
        warm.cells_written
    );
    assert!(
        warm.cells_skipped >= cold.cells_written,
        "static blocks must be delta-skipped: {} skipped vs {} cold writes",
        warm.cells_skipped,
        cold.cells_written
    );
    server.shutdown();
}
