//! Property tests for the wire codec.
//!
//! The contract under test: encoding is **bijective on frames** — decode
//! of any encoded message succeeds and re-encodes to the identical bytes
//! (bitwise, NaN payloads included) — and decoding is **total** on
//! arbitrary bytes: truncated, oversized, wrong-version, and corrupt
//! frames return structured errors, never panic, never allocate off a
//! forged length.

use memlp_core::BudgetCause;
use memlp_lp::LpStatus;
use memlp_serve::codec::{
    decode_request, decode_response, encode_request, encode_response, DecodeError, HealthInfo,
    Request, Response, SolutionBody, SolveJob, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Arbitrary IEEE-754 bit patterns — includes NaN, ±∞, subnormals — so
/// the round trip is checked on payloads `PartialEq` cannot compare.
fn wild_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

fn f64s(max: usize) -> BoxedStrategy<Vec<f64>> {
    proptest::collection::vec(wild_f64(), 0..max).boxed()
}

fn tag() -> BoxedStrategy<String> {
    proptest::collection::vec(97u8..123, 0..12)
        .prop_map(|b| String::from_utf8(b).expect("ascii"))
        .boxed()
}

fn solve_job() -> BoxedStrategy<SolveJob> {
    (
        tag(),
        (0u32..64, 0u32..64),
        f64s(48),
        f64s(24),
        (f64s(24), 0u32..500, 0u32..500),
    )
        .prop_map(
            |(family, (rows, cols), a, b, (c, max_iters, deadline_ticks))| SolveJob {
                family,
                rows,
                cols,
                a,
                b,
                c,
                max_iters,
                deadline_ticks,
            },
        )
        .boxed()
}

fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        solve_job().prop_map(Request::Solve),
        Just(Request::Health),
        Just(Request::Drain),
    ]
    .boxed()
}

fn status() -> BoxedStrategy<LpStatus> {
    prop_oneof![
        Just(LpStatus::Optimal),
        Just(LpStatus::Infeasible),
        Just(LpStatus::Unbounded),
        Just(LpStatus::IterationLimit),
        Just(LpStatus::NumericalFailure),
    ]
    .boxed()
}

fn degraded() -> BoxedStrategy<Option<BudgetCause>> {
    prop_oneof![
        Just(None),
        Just(Some(BudgetCause::MaxIters)),
        Just(Some(BudgetCause::DeadlineExceeded)),
    ]
    .boxed()
}

fn solution_body() -> BoxedStrategy<SolutionBody> {
    (
        (status(), degraded(), wild_f64(), 0u64..10_000),
        (f64s(24), f64s(24)),
        (0u32..8, 0u32..8, any::<bool>(), any::<bool>()),
        (0u64..1 << 40, 0u64..1 << 40, any::<bool>(), 0u64..1 << 40),
    )
        .prop_map(
            |(
                (status, degraded, objective, iterations),
                (x, y),
                (retries, escalations, saw_faults, used_digital),
                (cells_written, cells_skipped, warm_start, latency_us),
            )| SolutionBody {
                status,
                degraded,
                objective,
                iterations,
                x,
                y,
                retries,
                escalations,
                saw_faults,
                used_digital,
                cells_written,
                cells_skipped,
                warm_start,
                latency_us,
            },
        )
        .boxed()
}

fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        solution_body().prop_map(Response::Solution),
        (0u32..100_000, 0u32..10_000).prop_map(|(retry_after_hint_ms, queue_depth)| {
            Response::Overloaded {
                retry_after_hint_ms,
                queue_depth,
            }
        }),
        (
            (any::<bool>(), any::<bool>()),
            (0u32..1000, 0u32..1000, 0u32..64),
            (0u64..1 << 40, 0u64..1 << 40),
        )
            .prop_map(
                |((ready, draining), (queued, capacity, workers), (completed, rejected))| {
                    Response::Health(HealthInfo {
                        ready,
                        draining,
                        queued,
                        capacity,
                        workers,
                        completed,
                        rejected,
                    })
                }
            ),
        tag().prop_map(|message| Response::Error { message }),
        (0u64..1 << 40).prop_map(|completed| Response::DrainAck { completed }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode → encode reproduces the original frame bytes
    /// exactly. Byte-level comparison (not `PartialEq` on the message)
    /// keeps NaN payloads honest.
    #[test]
    fn request_roundtrip_is_bitwise(req in request()) {
        let frame = encode_request(&req);
        let decoded = decode_request(&frame).expect("well-formed frame");
        prop_assert_eq!(encode_request(&decoded), frame);
    }

    #[test]
    fn response_roundtrip_is_bitwise(resp in response()) {
        let frame = encode_response(&resp);
        let decoded = decode_response(&frame).expect("well-formed frame");
        prop_assert_eq!(encode_response(&decoded), frame);
    }

    /// Every strict prefix of a valid frame is rejected as truncated —
    /// and, critically, without panicking.
    #[test]
    fn truncated_frames_are_rejected(req in request(), cut in 0.0f64..1.0) {
        let frame = encode_request(&req);
        let keep = ((frame.len() - 1) as f64 * cut) as usize;
        prop_assert_eq!(decode_request(&frame[..keep]), Err(DecodeError::Truncated));
    }

    /// Flipping the version byte fails cleanly regardless of payload.
    #[test]
    fn wrong_version_is_rejected(req in request(), version in 0u8..255) {
        let mut frame = encode_request(&req);
        prop_assume!(version != PROTOCOL_VERSION);
        frame[4] = version;
        prop_assert_eq!(decode_request(&frame), Err(DecodeError::BadVersion(version)));
    }

    /// A forged length prefix above the cap is refused before any body
    /// bytes are even considered (so before any allocation).
    #[test]
    fn oversized_declarations_are_rejected(extra in 1u32..1_000_000) {
        let declared = MAX_FRAME_BYTES + extra;
        let frame = declared.to_le_bytes().to_vec();
        prop_assert_eq!(
            decode_request(&frame),
            Err(DecodeError::Oversized { declared })
        );
    }

    /// Arbitrary garbage never panics the decoder (requests and
    /// responses share the frame layer, so exercise both).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Trailing bytes after a complete body are flagged, not ignored —
    /// a desynced stream must fail loudly.
    #[test]
    fn trailing_bytes_are_rejected(req in request(), extra in 1usize..16) {
        let mut frame = encode_request(&req);
        frame.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert_eq!(decode_request(&frame), Err(DecodeError::Trailing(extra)));
    }
}

/// A response kind fed to the request decoder (and vice versa) is an
/// error, not a misparse: the two directions reject each other's kinds.
#[test]
fn direction_confusion_is_rejected() {
    let resp = encode_response(&Response::DrainAck { completed: 7 });
    assert!(matches!(
        decode_request(&resp),
        Err(DecodeError::BadKind(20))
    ));
    let req = encode_request(&Request::Health);
    assert!(matches!(
        decode_response(&req),
        Err(DecodeError::BadKind(2))
    ));
}

/// Out-of-range discriminants inside an otherwise valid frame fail as
/// `BadField` instead of wrapping around.
#[test]
fn bad_discriminants_are_rejected() {
    let mut frame = encode_response(&Response::Solution(SolutionBody {
        status: LpStatus::Optimal,
        degraded: None,
        objective: 1.0,
        iterations: 3,
        x: vec![],
        y: vec![],
        retries: 0,
        escalations: 0,
        saw_faults: false,
        used_digital: false,
        cells_written: 0,
        cells_skipped: 0,
        warm_start: false,
        latency_us: 10,
    }));
    // Byte 6 is the status discriminant (after len + version + kind).
    frame[6] = 99;
    assert_eq!(
        decode_response(&frame),
        Err(DecodeError::BadField("status"))
    );
}
