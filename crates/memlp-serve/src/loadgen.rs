//! Closed-loop load generator for the serve path.
//!
//! `concurrency` clients each run a synchronous request loop against one
//! connection; per-request latency is sampled client-side. Overloaded
//! responses honour the server's retry hint (bounded), so a burst above
//! queue capacity sheds and then completes rather than hanging — the
//! behaviour the serve bench gates on.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::client::ServeClient;
use crate::codec::{Response, SolveJob};

/// One load scenario.
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Retries per request on `Overloaded` (each sleeps the server's
    /// hint) before counting the request as shed.
    pub max_overload_retries: usize,
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Requests issued (excluding overload retries).
    pub sent: usize,
    /// Solves that returned `Optimal`.
    pub ok: usize,
    /// Solves that returned a budget-degraded iterate.
    pub degraded: usize,
    /// `Overloaded` responses observed (retries included).
    pub overload_replies: usize,
    /// Requests still shed after every retry.
    pub shed: usize,
    /// Structured error responses.
    pub errors: usize,
    /// Median solve latency, microseconds (client-observed).
    pub p50_us: u64,
    /// 99th-percentile solve latency, microseconds.
    pub p99_us: u64,
    /// Wall-clock for the whole run, seconds.
    pub elapsed_s: f64,
    /// Completed solves per second over the run.
    pub solves_per_sec: f64,
    /// Cells pulsed across all solves (from response ledgers).
    pub cells_written: u64,
    /// Write pulses skipped by delta programming across all solves.
    pub cells_skipped: u64,
    /// Solves that started from a pooled warm iterate.
    pub warm_hits: usize,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one scenario. `make_job(client, request)` builds each job, so a
/// scenario can spread families across clients or vary budgets per
/// request.
pub fn run_load(
    cfg: &LoadConfig,
    make_job: impl Fn(usize, usize) -> SolveJob + Sync,
) -> LoadReport {
    let collected: Mutex<(Vec<u64>, LoadReport)> = Mutex::new((Vec::new(), LoadReport::default()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..cfg.concurrency {
            let make_job = &make_job;
            let collected = &collected;
            scope.spawn(move || {
                let mut client = match ServeClient::connect(&cfg.addr) {
                    Ok(c) => c,
                    Err(_) => {
                        collected
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .1
                            .errors += cfg.requests_per_client;
                        return;
                    }
                };
                let mut latencies = Vec::new();
                let mut local = LoadReport::default();
                for req_idx in 0..cfg.requests_per_client {
                    local.sent += 1;
                    let job = make_job(client_idx, req_idx);
                    let t0 = Instant::now();
                    let mut outcome = client.solve(job.clone());
                    let mut retries = 0;
                    while let Ok(Response::Overloaded {
                        retry_after_hint_ms,
                        ..
                    }) = &outcome
                    {
                        local.overload_replies += 1;
                        if retries >= cfg.max_overload_retries {
                            break;
                        }
                        retries += 1;
                        std::thread::sleep(Duration::from_millis(*retry_after_hint_ms as u64));
                        outcome = client.solve(job.clone());
                    }
                    match outcome {
                        Ok(Response::Solution(s)) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            if s.degraded.is_some() {
                                local.degraded += 1;
                            } else if s.status.is_optimal() {
                                local.ok += 1;
                            } else {
                                local.errors += 1;
                            }
                            local.cells_written += s.cells_written;
                            local.cells_skipped += s.cells_skipped;
                            if s.warm_start {
                                local.warm_hits += 1;
                            }
                        }
                        Ok(Response::Overloaded { .. }) => local.shed += 1,
                        Ok(_) | Err(_) => local.errors += 1,
                    }
                }
                let mut g = collected.lock().unwrap_or_else(PoisonError::into_inner);
                g.0.extend(latencies);
                let r = &mut g.1;
                r.sent += local.sent;
                r.ok += local.ok;
                r.degraded += local.degraded;
                r.overload_replies += local.overload_replies;
                r.shed += local.shed;
                r.errors += local.errors;
                r.cells_written += local.cells_written;
                r.cells_skipped += local.cells_skipped;
                r.warm_hits += local.warm_hits;
            });
        }
    });
    let (mut latencies, mut report) = collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50.0);
    report.p99_us = percentile(&latencies, 99.0);
    report.elapsed_s = started.elapsed().as_secs_f64();
    let completed = (report.ok + report.degraded) as f64;
    report.solves_per_sec = if report.elapsed_s > 0.0 {
        completed / report.elapsed_s
    } else {
        0.0
    };
    report
}
