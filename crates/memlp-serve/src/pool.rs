//! Warm hardware-context pool.
//!
//! Each worker owns one pool: a map from problem family to a live
//! [`HwContext`] plus the previous solution's `(x, y)` iterate. Repeat
//! jobs from one family re-enter their array via
//! [`HwContext::begin_reuse`], so the delta-write code cache skips
//! unchanged cells and PDIP warm-starts from the last optimum — the two
//! effects behind the serve path's warm-vs-cold latency gap.
//!
//! The warm iterate is gated on a constraint-matrix fingerprint: a family
//! tag that suddenly carries a different `A` still reuses the array (delta
//! programming reconciles cell by cell) but drops the stale iterate, which
//! would otherwise start the solve from another problem's optimum.

use std::collections::BTreeMap;

use memlp_core::{HwContext, ANALOG_TILE_SIDE};
use memlp_crossbar::{CrossbarConfig, TileOccupancy};
use memlp_lp::LpProblem;

/// FNV-1a over a byte stream — the fingerprint used to gate warm starts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a problem's tile-occupancy *shape* at the analog tile
/// granularity — the [`FamilyKey::occupancy`] component. Built from the
/// planned coefficients only, never from analog read-backs.
pub fn occupancy_fingerprint(lp: &LpProblem) -> u64 {
    TileOccupancy::from_matrix(lp.a(), ANALOG_TILE_SIDE).fingerprint()
}

/// Fingerprints a problem's constraint matrix (dims + coefficient bits).
pub fn problem_fingerprint(lp: &LpProblem) -> u64 {
    let mut h = fnv1a(&(lp.num_constraints() as u64).to_le_bytes());
    h ^= fnv1a(&(lp.num_vars() as u64).to_le_bytes()).rotate_left(17);
    for &v in lp.a().as_slice() {
        h ^= fnv1a(&v.to_bits().to_le_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pool key: the client-supplied family tag plus the problem shape and
/// its tile-occupancy fingerprint. Two shapes under one tag get separate
/// arrays — a crossbar programmed for `m×n` cannot serve `m'×n'` — and
/// so do two *occupancy* shapes: an array fabricated with elided tiles
/// (DESIGN.md §18) has no hardware where another problem's coefficients
/// would need it, so block-sparsity layouts cannot share a warm slot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FamilyKey {
    /// Client-supplied family tag.
    pub tag: String,
    /// Constraint count `m`.
    pub rows: usize,
    /// Variable count `n`.
    pub cols: usize,
    /// [`TileOccupancy::fingerprint`] of the planned constraint matrix at
    /// the analog tile granularity.
    ///
    /// [`TileOccupancy::fingerprint`]: memlp_crossbar::TileOccupancy::fingerprint
    pub occupancy: u64,
}

/// One warm slot: a live array plus the state a repeat solve reuses.
pub struct PoolEntry {
    /// The simulated array, kept powered between requests (variation
    /// draw, delta-write code caches, and fault state all persist).
    pub hw: HwContext,
    /// `(x, y)` of the last optimal solve, used to warm-start the next.
    pub warm: Option<(Vec<f64>, Vec<f64>)>,
    /// Fingerprint of the constraint matrix `warm` was computed for.
    pub fingerprint: u64,
    /// Solves dispatched onto this entry (also the reuse salt).
    pub solves: u64,
    /// Times this slot was rebuilt after confirmed-defective hardware.
    pub resets: u64,
}

/// Per-worker pool of warm contexts, LRU-bounded by entry count.
pub struct ContextPool {
    config: CrossbarConfig,
    entries: BTreeMap<FamilyKey, PoolEntry>,
    capacity: usize,
    /// Monotonic tick for LRU accounting.
    clock: u64,
    last_used: BTreeMap<FamilyKey, u64>,
}

impl ContextPool {
    /// An empty pool building contexts from `config`, holding at most
    /// `capacity` warm entries (min 1).
    pub fn new(config: CrossbarConfig, capacity: usize) -> Self {
        ContextPool {
            config,
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            last_used: BTreeMap::new(),
        }
    }

    /// Warm entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is warm.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetches (or creates) the entry for `key`, dropping a stale warm
    /// iterate when `fingerprint` disagrees with the one on record. At
    /// capacity, the least-recently-used other entry is evicted.
    pub fn entry(&mut self, key: &FamilyKey, fingerprint: u64) -> &mut PoolEntry {
        self.clock += 1;
        if !self.entries.contains_key(key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .last_used
                .iter()
                .filter(|(k, _)| self.entries.contains_key(*k))
                .min_by_key(|(_, &t)| t)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.last_used.remove(&victim);
            }
        }
        self.last_used.insert(key.clone(), self.clock);
        let config = self.config;
        let entry = self
            .entries
            .entry(key.clone())
            .or_insert_with(|| PoolEntry {
                hw: HwContext::new(config),
                warm: None,
                fingerprint,
                solves: 0,
                resets: 0,
            });
        if entry.fingerprint != fingerprint {
            entry.warm = None;
            entry.fingerprint = fingerprint;
        }
        entry
    }

    /// Replaces `key`'s array with a freshly fabricated one (new seed, so
    /// fault plans and variation redraw) — the escape hatch once write–
    /// verify keeps confirming defects on the warm array. The warm iterate
    /// is dropped with it: it was computed on the defective hardware.
    pub fn reset(&mut self, key: &FamilyKey) {
        if let Some(entry) = self.entries.get_mut(key) {
            let resets = entry.resets + 1;
            let seed = self
                .config
                .seed
                .wrapping_add(resets.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            *entry = PoolEntry {
                hw: HwContext::new(self.config.with_seed(seed)),
                warm: None,
                fingerprint: entry.fingerprint,
                solves: 0,
                resets,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_lp::generator::RandomLp;

    fn key(tag: &str) -> FamilyKey {
        FamilyKey {
            tag: tag.into(),
            rows: 12,
            cols: 4,
            occupancy: 0,
        }
    }

    #[test]
    fn fingerprint_mismatch_drops_warm_iterate() {
        let mut pool = ContextPool::new(CrossbarConfig::paper_default(), 4);
        let lp_a = RandomLp::paper(12, 3).feasible();
        let lp_b = RandomLp::paper(12, 4).feasible();
        let fp_a = problem_fingerprint(&lp_a);
        let fp_b = problem_fingerprint(&lp_b);
        assert_ne!(fp_a, fp_b, "distinct problems must fingerprint apart");

        let e = pool.entry(&key("k"), fp_a);
        e.warm = Some((vec![1.0; 4], vec![1.0; 12]));
        assert!(pool.entry(&key("k"), fp_a).warm.is_some());
        assert!(pool.entry(&key("k"), fp_b).warm.is_none());
    }

    #[test]
    fn occupancy_shapes_get_separate_warm_slots() {
        // Same tag and dims, different block-sparsity layout: the arrays
        // cannot be shared (elided tiles have no hardware), so the keys
        // must map to distinct pool entries.
        let mut pool = ContextPool::new(CrossbarConfig::paper_default(), 4);
        let lp = RandomLp::paper(12, 3).feasible();
        let dense = occupancy_fingerprint(&lp);
        let mut k_dense = key("k");
        k_dense.occupancy = dense;
        let mut k_sparse = key("k");
        k_sparse.occupancy = dense ^ 0xABCD; // a different layout
        pool.entry(&k_dense, 1).solves = 5;
        assert_eq!(pool.entry(&k_sparse, 1).solves, 0, "fresh slot expected");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let mut pool = ContextPool::new(CrossbarConfig::paper_default(), 2);
        pool.entry(&key("a"), 1);
        pool.entry(&key("b"), 2);
        pool.entry(&key("a"), 1); // refresh a
        pool.entry(&key("c"), 3); // evicts b
        assert_eq!(pool.len(), 2);
        pool.entry(&key("a"), 1);
        assert_eq!(pool.entries.get(&key("a")).unwrap().fingerprint, 1);
        assert!(!pool.entries.contains_key(&key("b")));
    }

    #[test]
    fn reset_rebuilds_hardware_and_drops_warm_state() {
        let mut pool = ContextPool::new(CrossbarConfig::paper_default(), 2);
        let e = pool.entry(&key("a"), 7);
        e.warm = Some((vec![0.5; 4], vec![0.5; 12]));
        e.solves = 9;
        pool.reset(&key("a"));
        let e = pool.entry(&key("a"), 7);
        assert!(e.warm.is_none());
        assert_eq!(e.solves, 0);
        assert_eq!(e.resets, 1);
    }
}
