//! Hand-rolled wire codec for the serve protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! [u32 payload_len LE] [u8 version = 1] [u8 kind] [body ...]
//! ```
//!
//! `payload_len` counts everything after the length word (version byte,
//! kind byte, and body). Frames above [`MAX_FRAME_BYTES`] are rejected
//! before any allocation, so a hostile or corrupt peer cannot make the
//! server reserve gigabytes off a four-byte prefix. All integers are
//! little-endian; floats are IEEE-754 bit patterns (`f64::to_bits`), so
//! encoding is bijective even for NaN payloads and a decode→encode round
//! trip reproduces the original bytes exactly.
//!
//! Decoding never panics: every read is bounds-checked and malformed
//! input surfaces as a [`DecodeError`]. Vector lengths are validated
//! against the bytes actually present *before* allocating.

use std::io::{self, Read, Write};

use memlp_core::BudgetCause;
use memlp_lp::LpStatus;

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on a frame's payload (version + kind + body), bytes.
/// Large enough for a dense 1024×1024 job (~8 MiB of `A` plus slack),
/// small enough that a corrupt length prefix cannot trigger an
/// out-of-memory allocation.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

// Request kinds.
const KIND_SOLVE: u8 = 1;
const KIND_HEALTH: u8 = 2;
const KIND_DRAIN: u8 = 3;
// Response kinds.
const KIND_SOLUTION: u8 = 16;
const KIND_OVERLOADED: u8 = 17;
const KIND_HEALTH_INFO: u8 = 18;
const KIND_ERROR: u8 = 19;
const KIND_DRAIN_ACK: u8 = 20;

/// A solve request: one LP in the paper's canonical form plus an optional
/// per-request budget. `family` keys the server's warm-context pool —
/// repeat jobs from one family land on the same simulated array and hit
/// its delta-write cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveJob {
    /// Pool key (free-form tag; keep it stable across related jobs).
    pub family: String,
    /// Constraint count `m`.
    pub rows: u32,
    /// Variable count `n`.
    pub cols: u32,
    /// Row-major `m×n` constraint matrix.
    pub a: Vec<f64>,
    /// Right-hand side, length `m`.
    pub b: Vec<f64>,
    /// Objective, length `n`.
    pub c: Vec<f64>,
    /// Newton-iteration cap; `0` = no cap.
    pub max_iters: u32,
    /// Cooperative deadline in iteration ticks; `0` = none. Tick-based
    /// (not wall-clock) so budgeted runs replay bitwise.
    pub deadline_ticks: u32,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve one LP (the server replies [`Response::Solution`],
    /// [`Response::Overloaded`], or [`Response::Error`]).
    Solve(SolveJob),
    /// Liveness/readiness probe.
    Health,
    /// Graceful shutdown: stop admitting, finish in-flight work, ack.
    Drain,
}

/// Everything a client learns from one completed solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionBody {
    /// Termination status.
    pub status: LpStatus,
    /// `Some` when the job's budget expired: the payload is the best
    /// iterate observed, not a converged optimum.
    pub degraded: Option<BudgetCause>,
    /// Objective `cᵀx` at termination.
    pub objective: f64,
    /// Newton iterations spent.
    pub iterations: u64,
    /// Primal solution.
    pub x: Vec<f64>,
    /// Dual solution.
    pub y: Vec<f64>,
    /// Hardware re-solve attempts beyond the first.
    pub retries: u32,
    /// Recovery-ladder rungs climbed (reprogram/remap/redraw/digital).
    pub escalations: u32,
    /// Write–verify reported at least one defective cell.
    pub saw_faults: bool,
    /// The solve fell back to the digital reference path.
    pub used_digital: bool,
    /// Cells pulsed for *this request* (delta against the warm context's
    /// ledger, not the context lifetime total).
    pub cells_written: u64,
    /// Write pulses skipped by delta programming for this request.
    pub cells_skipped: u64,
    /// The solve started from a pooled warm iterate.
    pub warm_start: bool,
    /// Server-side wall time for this request, microseconds.
    pub latency_us: u64,
}

/// Snapshot returned by [`Request::Health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Accepting new work.
    pub ready: bool,
    /// Drain in progress: in-flight jobs finish, new ones are refused.
    pub draining: bool,
    /// Jobs currently queued.
    pub queued: u32,
    /// Admission-queue capacity.
    pub capacity: u32,
    /// Worker threads.
    pub workers: u32,
    /// Jobs completed since startup.
    pub completed: u64,
    /// Jobs shed by backpressure since startup.
    pub rejected: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed solve (possibly degraded — check
    /// [`SolutionBody::degraded`]).
    Solution(SolutionBody),
    /// Load shed at admission: the queue was full. Retry no sooner than
    /// the hint; the hint grows with queue depth.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_after_hint_ms: u32,
        /// Queue depth observed at rejection.
        queue_depth: u32,
    },
    /// Health snapshot.
    Health(HealthInfo),
    /// The request was admitted but could not be served (malformed LP,
    /// preflight refusal, draining, ...).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Drain finished: all in-flight work completed.
    DrainAck {
        /// Total jobs completed over the server's lifetime.
        completed: u64,
    },
}

/// Why a frame or body failed to decode. Decoding is total — every
/// malformed input maps here, never to a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header or a field requires.
    Truncated,
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Length the frame claimed.
        declared: u32,
    },
    /// Version byte differs from [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown message kind for the expected direction.
    BadKind(u8),
    /// A field held an out-of-range discriminant or invalid UTF-8.
    BadField(&'static str),
    /// Bytes left over after the body was fully read.
    Trailing(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::Oversized { declared } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds cap of {MAX_FRAME_BYTES}"
                )
            }
            DecodeError::BadVersion(v) => {
                write!(f, "protocol version {v} (expected {PROTOCOL_VERSION})")
            }
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
            DecodeError::BadField(what) => write!(f, "invalid field: {what}"),
            DecodeError::Trailing(n) => write!(f, "{n} trailing bytes after body"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Primitive writers/readers.

struct Builder {
    buf: Vec<u8>,
}

impl Builder {
    fn new(kind: u8) -> Self {
        // Length placeholder is patched in `finish`.
        let mut buf = vec![0u8; 4];
        buf.push(PROTOCOL_VERSION);
        buf.push(kind);
        Builder { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let payload = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&payload.to_le_bytes());
        self.buf
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadField("utf-8 string"))
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>, DecodeError> {
        let count = self.u32()? as usize;
        // Validate against bytes present before allocating: a forged count
        // must not reserve memory the frame doesn't carry.
        if count.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn done(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Status / cause discriminants.

fn status_code(s: LpStatus) -> u8 {
    match s {
        LpStatus::Optimal => 0,
        LpStatus::Infeasible => 1,
        LpStatus::Unbounded => 2,
        LpStatus::IterationLimit => 3,
        LpStatus::NumericalFailure => 4,
    }
}

fn status_from(code: u8) -> Result<LpStatus, DecodeError> {
    Ok(match code {
        0 => LpStatus::Optimal,
        1 => LpStatus::Infeasible,
        2 => LpStatus::Unbounded,
        3 => LpStatus::IterationLimit,
        4 => LpStatus::NumericalFailure,
        _ => return Err(DecodeError::BadField("status")),
    })
}

fn cause_code(c: Option<BudgetCause>) -> u8 {
    match c {
        None => 0,
        Some(BudgetCause::MaxIters) => 1,
        Some(BudgetCause::DeadlineExceeded) => 2,
    }
}

fn cause_from(code: u8) -> Result<Option<BudgetCause>, DecodeError> {
    Ok(match code {
        0 => None,
        1 => Some(BudgetCause::MaxIters),
        2 => Some(BudgetCause::DeadlineExceeded),
        _ => return Err(DecodeError::BadField("degraded cause")),
    })
}

fn bool_from(code: u8) -> Result<bool, DecodeError> {
    match code {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::BadField("bool")),
    }
}

// ---------------------------------------------------------------------------
// Message encode/decode (full frames, including the length prefix).

/// Encodes a request as a complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Solve(job) => {
            let mut b = Builder::new(KIND_SOLVE);
            b.str(&job.family);
            b.u32(job.rows);
            b.u32(job.cols);
            b.vec_f64(&job.a);
            b.vec_f64(&job.b);
            b.vec_f64(&job.c);
            b.u32(job.max_iters);
            b.u32(job.deadline_ticks);
            b.finish()
        }
        Request::Health => Builder::new(KIND_HEALTH).finish(),
        Request::Drain => Builder::new(KIND_DRAIN).finish(),
    }
}

/// Encodes a response as a complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Solution(s) => {
            let mut b = Builder::new(KIND_SOLUTION);
            b.u8(status_code(s.status));
            b.u8(cause_code(s.degraded));
            b.f64(s.objective);
            b.u64(s.iterations);
            b.vec_f64(&s.x);
            b.vec_f64(&s.y);
            b.u32(s.retries);
            b.u32(s.escalations);
            b.u8(s.saw_faults as u8);
            b.u8(s.used_digital as u8);
            b.u64(s.cells_written);
            b.u64(s.cells_skipped);
            b.u8(s.warm_start as u8);
            b.u64(s.latency_us);
            b.finish()
        }
        Response::Overloaded {
            retry_after_hint_ms,
            queue_depth,
        } => {
            let mut b = Builder::new(KIND_OVERLOADED);
            b.u32(*retry_after_hint_ms);
            b.u32(*queue_depth);
            b.finish()
        }
        Response::Health(h) => {
            let mut b = Builder::new(KIND_HEALTH_INFO);
            b.u8(h.ready as u8);
            b.u8(h.draining as u8);
            b.u32(h.queued);
            b.u32(h.capacity);
            b.u32(h.workers);
            b.u64(h.completed);
            b.u64(h.rejected);
            b.finish()
        }
        Response::Error { message } => {
            let mut b = Builder::new(KIND_ERROR);
            b.str(message);
            b.finish()
        }
        Response::DrainAck { completed } => {
            let mut b = Builder::new(KIND_DRAIN_ACK);
            b.u64(*completed);
            b.finish()
        }
    }
}

/// Splits a frame into `(kind, body)` after validating length, cap, and
/// version. `frame` must contain exactly one frame.
fn split_frame(frame: &[u8]) -> Result<(u8, &[u8]), DecodeError> {
    if frame.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let declared = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    if declared > MAX_FRAME_BYTES {
        return Err(DecodeError::Oversized { declared });
    }
    if declared < 2 {
        return Err(DecodeError::Truncated);
    }
    let payload = &frame[4..];
    if payload.len() < declared as usize {
        return Err(DecodeError::Truncated);
    }
    if payload.len() > declared as usize {
        return Err(DecodeError::Trailing(payload.len() - declared as usize));
    }
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    Ok((payload[1], &payload[2..]))
}

/// Decodes one complete request frame.
pub fn decode_request(frame: &[u8]) -> Result<Request, DecodeError> {
    let (kind, body) = split_frame(frame)?;
    decode_request_body(kind, body)
}

fn decode_request_body(kind: u8, body: &[u8]) -> Result<Request, DecodeError> {
    let mut c = Cursor::new(body);
    let req = match kind {
        KIND_SOLVE => Request::Solve(SolveJob {
            family: c.str()?,
            rows: c.u32()?,
            cols: c.u32()?,
            a: c.vec_f64()?,
            b: c.vec_f64()?,
            c: c.vec_f64()?,
            max_iters: c.u32()?,
            deadline_ticks: c.u32()?,
        }),
        KIND_HEALTH => Request::Health,
        KIND_DRAIN => Request::Drain,
        other => return Err(DecodeError::BadKind(other)),
    };
    c.done()?;
    Ok(req)
}

/// Decodes one complete response frame.
pub fn decode_response(frame: &[u8]) -> Result<Response, DecodeError> {
    let (kind, body) = split_frame(frame)?;
    decode_response_body(kind, body)
}

fn decode_response_body(kind: u8, body: &[u8]) -> Result<Response, DecodeError> {
    let mut c = Cursor::new(body);
    let resp = match kind {
        KIND_SOLUTION => Response::Solution(SolutionBody {
            status: status_from(c.u8()?)?,
            degraded: cause_from(c.u8()?)?,
            objective: c.f64()?,
            iterations: c.u64()?,
            x: c.vec_f64()?,
            y: c.vec_f64()?,
            retries: c.u32()?,
            escalations: c.u32()?,
            saw_faults: bool_from(c.u8()?)?,
            used_digital: bool_from(c.u8()?)?,
            cells_written: c.u64()?,
            cells_skipped: c.u64()?,
            warm_start: bool_from(c.u8()?)?,
            latency_us: c.u64()?,
        }),
        KIND_OVERLOADED => Response::Overloaded {
            retry_after_hint_ms: c.u32()?,
            queue_depth: c.u32()?,
        },
        KIND_HEALTH_INFO => Response::Health(HealthInfo {
            ready: bool_from(c.u8()?)?,
            draining: bool_from(c.u8()?)?,
            queued: c.u32()?,
            capacity: c.u32()?,
            workers: c.u32()?,
            completed: c.u64()?,
            rejected: c.u64()?,
        }),
        KIND_ERROR => Response::Error { message: c.str()? },
        KIND_DRAIN_ACK => Response::DrainAck {
            completed: c.u64()?,
        },
        other => return Err(DecodeError::BadKind(other)),
    };
    c.done()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Stream framing over std::io.

/// What went wrong reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Transport failure (includes mid-frame EOF).
    Io(io::Error),
    /// The bytes arrived but did not parse.
    Decode(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

/// Writes pre-encoded frame bytes to a stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads exactly one frame's raw bytes (length prefix included) from a
/// stream. Distinguishes a clean close at a frame boundary
/// ([`FrameError::Closed`]) from a mid-frame EOF (an I/O error), and
/// refuses oversized declarations before allocating.
pub fn read_frame_bytes(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => r.read_exact(&mut len[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => r.read_exact(&mut len)?,
        Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_le_bytes(len);
    if declared > MAX_FRAME_BYTES {
        return Err(FrameError::Decode(DecodeError::Oversized { declared }));
    }
    let mut frame = vec![0u8; 4 + declared as usize];
    frame[..4].copy_from_slice(&len);
    r.read_exact(&mut frame[4..])?;
    Ok(frame)
}

/// Reads and decodes one request from a stream.
pub fn read_request(r: &mut impl Read) -> Result<Request, FrameError> {
    Ok(decode_request(&read_frame_bytes(r)?)?)
}

/// Reads and decodes one response from a stream.
pub fn read_response(r: &mut impl Read) -> Result<Response, FrameError> {
    Ok(decode_response(&read_frame_bytes(r)?)?)
}
