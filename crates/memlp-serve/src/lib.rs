#![forbid(unsafe_code)]
//! # memlp-serve — the LP solver as a long-running service
//!
//! Turns the one-shot crossbar solvers into a daemon that amortizes
//! hardware setup across requests. The physical intuition: programming a
//! memristor array is the expensive part (write pulses, verify loops);
//! once programmed, repeat solves of the same problem *family* touch only
//! the cells that changed. A service that keeps arrays warm between
//! requests therefore beats a cold per-request solve on both latency and
//! energy — and this crate is that service, plus the robustness armour a
//! long-running process needs.
//!
//! | Module | Role |
//! |---|---|
//! | [`codec`] | Versioned length-prefixed wire protocol (hand-rolled, dependency-free) |
//! | [`queue`] | Bounded admission queue: load-shedding backpressure, per-family fairness |
//! | [`pool`] | Warm [`HwContext`](memlp_core::HwContext) pool keyed by family, fingerprint-gated warm starts |
//! | [`worker`] | Solve loop: budgets, degradation, defective-array replacement with decaying backoff |
//! | [`server`] | Accept loop, health/readiness, graceful drain |
//! | [`client`] | Synchronous client used by the CLI and benches |
//! | [`loadgen`] | Closed-loop load generator behind `BENCH_serve.json` |
//!
//! Four robustness pillars (DESIGN.md §16):
//!
//! 1. **Deadlines & cooperative cancellation** — per-request
//!    [`Budget`](memlp_core::Budget)s polled once per Newton iteration;
//!    expiry returns the best iterate with a `degraded` marker instead of
//!    hanging the connection.
//! 2. **Bounded admission** — a full queue sheds load *immediately* with
//!    a structured `Overloaded` reply carrying a depth-scaled retry hint.
//! 3. **Retry on confirmed-defective hardware** — beyond the solver's
//!    in-context recovery ladder, the worker scraps and refabricates a
//!    family's array (fresh fault plan) and retries with decaying
//!    backoff.
//! 4. **Graceful degradation & lifecycle** — health/readiness frames, and
//!    a drain that completes every admitted job before acking.
//!
//! Unlike every solver crate, this one is allowed wall-clock time and
//! real concurrency (sockets, threads, locks): determinism here means
//! *replayable solves* — a single-worker server fed sequential requests
//! with iteration-tick deadlines produces bitwise-identical responses —
//! not identical scheduling.

pub mod client;
pub mod codec;
pub mod config;
pub mod loadgen;
pub mod pool;
pub mod queue;
pub mod server;
pub mod worker;

pub use client::{ClientError, ServeClient};
pub use codec::{
    DecodeError, FrameError, HealthInfo, Request, Response, SolutionBody, SolveJob,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use config::{ServeConfig, ServeSolver};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use pool::{occupancy_fingerprint, problem_fingerprint, ContextPool, FamilyKey, PoolEntry};
pub use queue::{JobQueue, PushError, Rejection};
pub use server::{Server, ServerHandle, ServerStats};
pub use worker::QueuedJob;
