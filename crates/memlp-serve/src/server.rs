//! The TCP front end: accept loop, per-connection protocol handling, and
//! the graceful-drain lifecycle.
//!
//! Lifecycle: **ready** (accepting and solving) → **draining** (a
//! [`Request::Drain`] closed admission; workers finish every admitted
//! job) → **stopped** (drain acked, accept loop exited). Clients that
//! race a drain get a structured `Error`/`Overloaded` response, never a
//! dropped connection with work silently discarded.
//!
//! Sizing note: one worker serving sequential requests is end-to-end
//! deterministic (iteration-tick deadlines, seeded hardware); more
//! workers trade that for throughput, which is the serve path's analogue
//! of the batch API's thread-count invariance caveat.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use crate::codec::{
    encode_response, read_request, write_frame, FrameError, HealthInfo, Request, Response,
};
use crate::config::ServeConfig;
use crate::queue::{JobQueue, PushError};
use crate::worker::{run_worker, QueuedJob};

/// Interval the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Monotonic service counters, shared by workers and connections.
#[derive(Debug, Default)]
pub struct ServerStats {
    completed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

impl ServerStats {
    /// Tallies one response about to leave the server.
    pub fn record(&self, resp: &Response) {
        match resp {
            Response::Solution(s) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                if s.degraded.is_some() {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Response::Overloaded { .. } => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error { .. } => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Response::Health(_) | Response::DrainAck { .. } => {}
        }
    }

    /// Jobs completed since startup (degraded included).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Completed jobs that returned a budget-degraded iterate.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Jobs shed by admission backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests answered with a structured error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

struct Shared {
    config: ServeConfig,
    queue: JobQueue<QueuedJob>,
    stats: ServerStats,
    draining: AtomicBool,
    stop: AtomicBool,
    workers_done: Mutex<usize>,
    workers_cv: Condvar,
}

impl Shared {
    fn health(&self) -> HealthInfo {
        let draining = self.draining.load(Ordering::Acquire);
        HealthInfo {
            ready: !draining && !self.stop.load(Ordering::Acquire),
            draining,
            queued: self.queue.len() as u32,
            capacity: self.queue.capacity() as u32,
            workers: self.config.workers as u32,
            completed: self.stats.completed(),
            rejected: self.stats.rejected(),
        }
    }

    /// Blocks until every worker thread has exited its loop.
    fn wait_workers_drained(&self) {
        // Poison recovery: the counter is a plain usize whose only
        // invariant is monotonicity, so a thread that panicked while
        // holding the lock leaves nothing inconsistent behind.
        let mut done = self
            .workers_done
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *done < self.config.workers {
            done = self
                .workers_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The serve daemon. [`Server::bind`] starts it; the returned
/// [`ServerHandle`] owns its threads.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// configured workers and the accept loop, and returns immediately.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<ServerHandle> {
        let config = ServeConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_depth),
            stats: ServerStats::default(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            workers_done: Mutex::new(0),
            workers_cv: Condvar::new(),
            config,
        });

        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    run_worker(&shared.queue, &shared.config, &shared.stats);
                    let mut done = shared
                        .workers_done
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    *done += 1;
                    shared.workers_cv.notify_all();
                })
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(listener, shared))
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// Owns the running server's threads. Dropping it force-stops the
/// server; [`wait`](Self::wait) instead parks until a protocol-level
/// drain stops it gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current health snapshot, sampled in-process.
    pub fn health(&self) -> HealthInfo {
        self.shared.health()
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Parks until a [`Request::Drain`] stops the server, then joins
    /// every thread. This is what `memlp serve` blocks on.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.join_workers();
    }

    /// Force-stops: closes admission, finishes queued jobs, joins all
    /// threads. In-flight work still completes (the queue drains before
    /// workers exit); only *new* connections are refused.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.close();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.join_workers();
    }

    fn join_workers(&mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                // Connection threads are detached: they exit when the
                // peer closes or the protocol ends, and a drain waits on
                // *workers*, whose replies unblock any connection still
                // waiting on a solve.
                thread::spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    loop {
        let request = match read_request(&mut stream) {
            Ok(req) => req,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Decode(e)) => {
                // After a malformed frame the stream offset is suspect;
                // answer once and hang up rather than misparse forever.
                let resp = Response::Error {
                    message: format!("bad frame: {e}"),
                };
                shared.stats.record(&resp);
                let _ = write_frame(&mut stream, &encode_response(&resp));
                return;
            }
        };
        match request {
            Request::Solve(job) => {
                let resp = admit_and_wait(job, &shared);
                if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                    return;
                }
            }
            Request::Health => {
                let resp = Response::Health(shared.health());
                if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                    return;
                }
            }
            Request::Drain => {
                shared.draining.store(true, Ordering::Release);
                shared.queue.close();
                shared.wait_workers_drained();
                let resp = Response::DrainAck {
                    completed: shared.stats.completed(),
                };
                let _ = write_frame(&mut stream, &encode_response(&resp));
                shared.stop.store(true, Ordering::Release);
                return;
            }
        }
    }
}

/// Admission: push onto the bounded queue and block this connection (not
/// the worker, not the accept loop) until the response arrives.
fn admit_and_wait(job: crate::codec::SolveJob, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::Acquire) {
        let resp = Response::Error {
            message: "server is draining".into(),
        };
        shared.stats.record(&resp);
        return resp;
    }
    let (reply, rx) = mpsc::channel();
    let family = job.family.clone();
    match shared.queue.push(&family, QueuedJob { job, reply }) {
        Ok(()) => rx.recv().unwrap_or_else(|_| Response::Error {
            message: "worker exited before replying".into(),
        }),
        Err(PushError::Overloaded(r)) => {
            let resp = Response::Overloaded {
                retry_after_hint_ms: r.retry_after_hint_ms.min(u32::MAX as u64) as u32,
                queue_depth: r.queue_depth as u32,
            };
            shared.stats.record(&resp);
            resp
        }
        Err(PushError::Closed) => {
            let resp = Response::Error {
                message: "server is draining".into(),
            };
            shared.stats.record(&resp);
            resp
        }
    }
}
