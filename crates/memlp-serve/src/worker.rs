//! Worker loop: pops admitted jobs and solves them on pooled warm
//! hardware contexts.
//!
//! Each worker owns a private [`ContextPool`], so no lock is held across
//! a solve. Beyond the solver's own in-context recovery ladder, the
//! worker adds one more robustness rung: when a solve comes back
//! non-optimal with *confirmed* hardware faults, the family's array is
//! scrapped and refabricated (new seed ⇒ fresh fault plan and variation
//! draw) and the job retried after a decaying backoff — the service-level
//! answer to a warm context that has accumulated unrecoverable defects.
//! Budget-degraded results are returned immediately, never retried: past
//! the deadline the client wants the best iterate now, not a better one
//! later.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use memlp_core::{
    Budget, CrossbarPdhgOptions, CrossbarPdhgSolver, CrossbarPdipSolver, CrossbarSolution,
    HwContext, IterationDeadline, WriteStats,
};
use memlp_linalg::Matrix;
use memlp_lp::LpProblem;

use crate::codec::{Response, SolutionBody, SolveJob};
use crate::config::{ServeConfig, ServeSolver};
use crate::pool::{occupancy_fingerprint, problem_fingerprint, ContextPool, FamilyKey};
use crate::queue::JobQueue;
use crate::server::ServerStats;

/// One admitted job plus the channel its response travels back on.
pub struct QueuedJob {
    /// The decoded solve request.
    pub job: SolveJob,
    /// Reply channel back to the connection that admitted the job.
    pub reply: mpsc::Sender<Response>,
}

/// Runs until the queue is closed **and** drained, so a graceful drain
/// finishes every admitted job before the worker exits.
pub fn run_worker(queue: &JobQueue<QueuedJob>, cfg: &ServeConfig, stats: &ServerStats) {
    let solver = WorkerSolver::new(cfg);
    let mut pool = ContextPool::new(cfg.crossbar, cfg.pool_capacity);
    while let Some(q) = queue.pop() {
        let resp = solve_one(&solver, &mut pool, cfg, &q.job);
        stats.record(&resp);
        // A gone receiver means the client hung up; the result is wasted
        // but the worker keeps serving.
        let _ = q.reply.send(resp);
    }
}

/// The worker's solver dispatch: one [`ServeSolver`] family instantiated
/// at startup, both driven through the identical warm-pool `solve_on`
/// contract (warm `(x, y)` seeds plus delta-programmed setup writes work
/// the same way for Newton iterates and PDHG iterates).
enum WorkerSolver {
    Pdip(CrossbarPdipSolver),
    Pdhg(CrossbarPdhgSolver),
}

impl WorkerSolver {
    fn new(cfg: &ServeConfig) -> Self {
        match cfg.solver {
            ServeSolver::Pdip => {
                WorkerSolver::Pdip(CrossbarPdipSolver::new(cfg.crossbar, cfg.options))
            }
            ServeSolver::Pdhg => WorkerSolver::Pdhg(CrossbarPdhgSolver::new(
                cfg.crossbar,
                CrossbarPdhgOptions {
                    recovery: cfg.options.recovery,
                    ..CrossbarPdhgOptions::default()
                },
            )),
        }
    }

    /// Admission check. The first-order backend is matrix-free — it has
    /// no dense core to refuse, so every well-formed problem is admitted.
    fn preflight(&self, lp: &LpProblem) -> Result<(), String> {
        match self {
            WorkerSolver::Pdip(s) => s.preflight(lp).map_err(|e| e.to_string()),
            WorkerSolver::Pdhg(_) => Ok(()),
        }
    }

    fn solve_on(
        &self,
        lp: &LpProblem,
        hw: &mut HwContext,
        budget: Budget<'_>,
        warm: Option<(&[f64], &[f64])>,
        salt: u64,
    ) -> CrossbarSolution {
        match self {
            WorkerSolver::Pdip(s) => s.solve_on(lp, hw, budget, warm, salt),
            WorkerSolver::Pdhg(s) => s.solve_on(lp, hw, budget, warm, salt),
        }
    }
}

/// Decodes the job into a canonical-form [`LpProblem`], surfacing shape
/// mismatches and non-finite coefficients as client errors.
fn build_problem(job: &SolveJob) -> Result<LpProblem, String> {
    let rows = job.rows as usize;
    let cols = job.cols as usize;
    let a = Matrix::from_vec(rows, cols, job.a.clone()).map_err(|e| e.to_string())?;
    LpProblem::new(a, job.b.clone(), job.c.clone()).map_err(|e| e.to_string())
}

fn solve_one(
    solver: &WorkerSolver,
    pool: &mut ContextPool,
    cfg: &ServeConfig,
    job: &SolveJob,
) -> Response {
    let started = Instant::now();
    let lp = match build_problem(job) {
        Ok(lp) => lp,
        Err(message) => return Response::Error { message },
    };
    if let Err(message) = solver.preflight(&lp) {
        return Response::Error { message };
    }
    let key = FamilyKey {
        tag: job.family.clone(),
        rows: job.rows as usize,
        cols: job.cols as usize,
        occupancy: occupancy_fingerprint(&lp),
    };
    let fingerprint = problem_fingerprint(&lp);

    let mut replacements = 0usize;
    loop {
        // Per-request budgets override the server-side defaults.
        let max_iters = if job.max_iters > 0 {
            job.max_iters
        } else {
            cfg.default_max_iters
        };
        let deadline_ticks = if job.deadline_ticks > 0 {
            job.deadline_ticks
        } else {
            cfg.default_deadline_ticks
        };
        // Deadline object must outlive the budget borrowing it.
        let deadline =
            (deadline_ticks > 0).then(|| IterationDeadline::new(deadline_ticks as usize));
        let mut budget = Budget::none();
        if max_iters > 0 {
            budget = budget.with_max_iters(max_iters as usize);
        }
        if let Some(d) = deadline.as_ref() {
            budget = budget.with_deadline(d);
        }

        let entry = pool.entry(&key, fingerprint);
        let warm_start = entry.warm.is_some();
        let salt = entry.solves;
        entry.solves += 1;
        let before = WriteStats::from_ledger(entry.hw.ledger());
        let result = {
            // Split borrows: the warm iterate is read while the hardware
            // context is mutably driven.
            let warm = entry
                .warm
                .as_ref()
                .map(|(x, y)| (x.as_slice(), y.as_slice()));
            solver.solve_on(&lp, &mut entry.hw, budget, warm, salt)
        };
        let writes = WriteStats::from_ledger(entry.hw.ledger()).since(&before);

        let optimal = result.solution.status.is_optimal();
        if optimal {
            entry.warm = Some((result.solution.x.clone(), result.solution.y.clone()));
        }

        // Service-level retry: only for non-optimal outcomes with
        // confirmed defects, never past a budget expiry.
        if !optimal
            && result.degraded.is_none()
            && result.recovery.saw_faults()
            && replacements < cfg.retry_limit
        {
            pool.reset(&key);
            let backoff = cfg.backoff_ms >> replacements;
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
            replacements += 1;
            continue;
        }

        return Response::Solution(SolutionBody {
            status: result.solution.status,
            degraded: result.degraded,
            objective: result.solution.objective,
            iterations: result.solution.iterations as u64,
            x: result.solution.x,
            y: result.solution.y,
            retries: (result.retries_used + replacements) as u32,
            escalations: result.recovery.escalations() as u32,
            saw_faults: result.recovery.saw_faults(),
            used_digital: result.recovery.used_digital_fallback(),
            cells_written: writes.cells_written,
            cells_skipped: writes.cells_skipped,
            warm_start,
            latency_us: started.elapsed().as_micros() as u64,
        });
    }
}
