//! Bounded admission queue with per-family fairness.
//!
//! Admission is the server's backpressure point: when the queue is full,
//! `push` fails *immediately* with a structured rejection (the wire layer
//! turns it into [`Response::Overloaded`](crate::codec::Response)) instead
//! of blocking the connection or growing without bound. The retry hint
//! scales with observed depth, so clients back off harder the deeper the
//! overload.
//!
//! Dequeue order is round-robin across families, FIFO within one: a
//! chatty family can fill the queue, but it cannot starve another
//! family's already-admitted jobs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Structured load-shed decision returned to the rejected client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Queue depth at the moment of rejection.
    pub queue_depth: usize,
    /// Suggested client backoff before retrying, milliseconds. Grows
    /// linearly with depth so a deeper overload spreads retries wider.
    pub retry_after_hint_ms: u64,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — shed the job, retry later.
    Overloaded(Rejection),
    /// Queue closed (drain in progress) — no retry will help.
    Closed,
}

struct Lane<T> {
    family: String,
    items: VecDeque<T>,
}

struct State<T> {
    lanes: Vec<Lane<T>>,
    /// Next lane index the round-robin scan starts from.
    cursor: usize,
    len: usize,
    closed: bool,
}

/// A blocking multi-producer multi-consumer queue, bounded at `capacity`
/// jobs summed across all families.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An empty queue admitting at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the queue state, recovering the guard if a panicking thread
    /// poisoned the lock: every mutation below restores the queue's
    /// invariants before releasing, so the data is still consistent and
    /// one crashed connection must not wedge admission for the rest.
    fn locked(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.locked().len
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.locked().closed
    }

    /// Admits a job under `family`, or sheds it if the queue is full or
    /// closed. Never blocks.
    pub fn push(&self, family: &str, item: T) -> Result<(), PushError> {
        let mut s = self.locked();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.len >= self.capacity {
            return Err(PushError::Overloaded(Rejection {
                queue_depth: s.len,
                retry_after_hint_ms: 10 * (s.len as u64 + 1),
            }));
        }
        match s.lanes.iter_mut().find(|l| l.family == family) {
            Some(lane) => lane.items.push_back(item),
            None => s.lanes.push(Lane {
                family: family.to_string(),
                items: VecDeque::from([item]),
            }),
        }
        s.len += 1;
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job, scanning lanes round-robin from the
    /// cursor. Returns `None` only when the queue is closed **and**
    /// drained — a closed queue still hands out every admitted job, which
    /// is what lets drain complete in-flight work instead of dropping it.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.locked();
        loop {
            if s.len > 0 {
                let lanes = s.lanes.len();
                for offset in 0..lanes {
                    let idx = (s.cursor + offset) % lanes;
                    if let Some(item) = s.lanes[idx].items.pop_front() {
                        s.cursor = (idx + 1) % lanes;
                        s.len -= 1;
                        return Some(item);
                    }
                }
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes admission: subsequent pushes fail with
    /// [`PushError::Closed`]; pops continue until the backlog drains.
    pub fn close(&self) {
        self.locked().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_family() {
        let q = JobQueue::new(8);
        for i in 0..4 {
            q.push("a", i).unwrap();
        }
        q.close();
        assert_eq!(
            std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn round_robin_across_families() {
        let q = JobQueue::new(8);
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        q.push("b", 10).unwrap();
        q.push("b", 20).unwrap();
        q.close();
        // a and b alternate even though a enqueued first.
        assert_eq!(
            std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(),
            vec![1, 10, 2, 20]
        );
    }

    #[test]
    fn overload_sheds_with_growing_hint() {
        let q = JobQueue::new(2);
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        let err = q.push("a", 3).unwrap_err();
        assert_eq!(
            err,
            PushError::Overloaded(Rejection {
                queue_depth: 2,
                retry_after_hint_ms: 30,
            })
        );
        // Shedding never disturbs admitted jobs.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_refuses_new_but_drains_backlog() {
        let q = JobQueue::new(4);
        q.push("a", 1).unwrap();
        q.close();
        assert_eq!(q.push("a", 2).unwrap_err(), PushError::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }
}
