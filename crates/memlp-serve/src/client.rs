//! Synchronous client for the serve protocol.
//!
//! Wraps the socket and codec so callers (CLI, benches, tests) never
//! touch `TcpStream` or frame bytes directly. The `send`/`recv` split
//! exists for burst tests that need several requests in flight across
//! connections before reading any response.

use std::io;
use std::net::TcpStream;

use crate::codec::{
    encode_request, read_response, write_frame, FrameError, HealthInfo, Request, Response, SolveJob,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Transport(FrameError),
    /// The server answered with a kind this call cannot accept.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "{e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Transport(FrameError::Io(e))
    }
}

/// One connection to a serve daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    /// Writes one request without waiting for the response.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        Ok(())
    }

    /// Reads the next response.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        Ok(read_response(&mut self.stream)?)
    }

    /// One request/response exchange.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Submits a solve job; the response may be `Solution`, `Overloaded`,
    /// or `Error` — backpressure is part of the contract, so it is not
    /// folded into `ClientError`.
    pub fn solve(&mut self, job: SolveJob) -> Result<Response, ClientError> {
        self.call(&Request::Solve(job))
    }

    /// Health probe.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        match self.call(&Request::Health)? {
            Response::Health(h) => Ok(h),
            _ => Err(ClientError::Unexpected("health")),
        }
    }

    /// Requests a graceful drain; returns the lifetime completed-job
    /// count once all in-flight work has finished.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Drain)? {
            Response::DrainAck { completed } => Ok(completed),
            _ => Err(ClientError::Unexpected("drain ack")),
        }
    }
}
