//! Server configuration.

use memlp_core::CrossbarSolverOptions;
use memlp_crossbar::CrossbarConfig;

/// Which crossbar solver family the workers run.
///
/// Both families share the warm-context pool, budgets, and recovery
/// machinery; the choice is the per-iteration primitive. PDIP converges
/// in tens of iterations but pays O(N) diagonal rewrites plus an analog
/// solve each one; PDHG takes more iterations but each is two writes-free
/// analog MVMs, so repeat requests against a warm array consume no write
/// endurance at all and the digital controller state stays O(n + m).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeSolver {
    /// Algorithm 1: the crossbar PDIP solver (default).
    #[default]
    Pdip,
    /// The crossbar-native first-order backend (restarted PDHG).
    Pdhg,
}

/// Everything a [`Server`](crate::server::Server) needs to start.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Simulated hardware every worker builds its contexts from.
    pub crossbar: CrossbarConfig,
    /// Solver family the workers instantiate.
    pub solver: ServeSolver,
    /// Solver policy (tolerances, retries, recovery ladder). The PDHG
    /// family adopts the recovery policy from here; its first-order
    /// tolerances come from `CrossbarPdhgOptions::default()`.
    pub options: CrossbarSolverOptions,
    /// Admission-queue capacity (jobs), summed across families. Full
    /// queue ⇒ load shed with `Overloaded`.
    pub queue_depth: usize,
    /// Worker threads, each owning a private warm-context pool. One
    /// worker serving sequential requests is deterministic end to end.
    pub workers: usize,
    /// Warm contexts each worker keeps before LRU eviction.
    pub pool_capacity: usize,
    /// Extra solve attempts on a *replacement* array after a solve fails
    /// with confirmed hardware defects (this is on top of the solver's
    /// own in-context recovery ladder).
    pub retry_limit: usize,
    /// Base worker backoff before retrying on a replacement array,
    /// milliseconds; decays by half per further attempt.
    pub backoff_ms: u64,
    /// Server-side default Newton-iteration cap applied to jobs that
    /// carry none (`0` = unlimited). A job's own nonzero cap wins.
    pub default_max_iters: u32,
    /// Server-side default iteration-tick deadline for jobs that carry
    /// none (`0` = no deadline). A job's own nonzero deadline wins.
    pub default_deadline_ticks: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            crossbar: CrossbarConfig::paper_default(),
            solver: ServeSolver::default(),
            options: CrossbarSolverOptions::default(),
            queue_depth: 16,
            workers: 1,
            pool_capacity: 8,
            retry_limit: 1,
            backoff_ms: 1,
            default_max_iters: 0,
            default_deadline_ticks: 0,
        }
    }
}

impl ServeConfig {
    /// Replaces the hardware model.
    pub fn with_crossbar(mut self, crossbar: CrossbarConfig) -> Self {
        self.crossbar = crossbar;
        self
    }

    /// Replaces the solver options.
    pub fn with_options(mut self, options: CrossbarSolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the solver family the workers run.
    pub fn with_solver(mut self, solver: ServeSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the admission-queue capacity (min 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the worker-thread count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}
