#![forbid(unsafe_code)]
//! Linear program types and workload generators for the `memlp` workspace.
//!
//! The canonical problem form throughout the workspace is the paper's
//! (§3.1):
//!
//! ```text
//! maximize cᵀx   subject to  A·x ⪯ b,  x ⪰ 0,    A ∈ ℝ^{m×n}
//! ```
//!
//! * [`LpProblem`] — the canonical form, with feasibility checks and the
//!   symmetric dual,
//! * [`LpSolution`] / [`LpStatus`] — the solver-agnostic result types shared
//!   by the software baselines and the crossbar solvers,
//! * [`generator`] — the paper's §4.2 random feasible/infeasible workloads
//!   (m constraints, n = m/3 variables) plus structured infeasible and
//!   unbounded instances,
//! * [`domains`] — the motivating applications from the paper's
//!   introduction ("routing, scheduling, and other optimization problems"):
//!   max-flow routing, multi-period production scheduling, and
//!   transportation problems, all emitted in canonical form,
//! * [`equilibrate`] — row equilibration, which improves the crossbar's
//!   analog dynamic-range utilization.
//!
//! # Example
//!
//! ```
//! use memlp_lp::LpProblem;
//! use memlp_linalg::Matrix;
//!
//! # fn main() -> Result<(), memlp_lp::LpError> {
//! // maximize x0 + x1  s.t.  x0 + 2 x1 ≤ 4,  3 x0 + x1 ≤ 6
//! let lp = LpProblem::new(
//!     Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]])?,
//!     vec![4.0, 6.0],
//!     vec![1.0, 1.0],
//! )?;
//! assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
//! assert_eq!(lp.objective(&[1.0, 1.0]), 2.0);
//! # Ok(())
//! # }
//! ```

mod error;
mod presolve;
mod problem;
mod scaling;
mod solution;

pub mod domains;
pub mod format;
pub mod generator;

pub use error::LpError;
pub use presolve::{presolve, Presolved, Restore};
pub use problem::LpProblem;
pub use scaling::{equilibrate, Equilibration};
pub use solution::{LpSolution, LpStatus};
