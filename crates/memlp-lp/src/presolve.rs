//! Presolve: cheap problem reductions applied before any solver runs.
//!
//! Real LP front-ends strip trivial structure before the expensive
//! algorithm starts; for the crossbar solvers every removed row/column also
//! shrinks the physical array. The reductions here are deliberately simple
//! and *certified* — each either preserves the optimal set exactly or
//! returns a certificate (infeasible/unbounded):
//!
//! * zero rows: `0ᵀx ≤ b_i` is redundant when `b_i ≥ 0` and an
//!   infeasibility certificate when `b_i < 0`;
//! * zero columns: a variable absent from every constraint is unbounded
//!   if `c_j > 0`, and fixed at 0 otherwise;
//! * dominated-by-zero variables: `c_j ≤ 0` **and** column `j` ⪰ 0 means
//!   `x_j = 0` is always at least as good and never hurts feasibility;
//! * free-ride variables: `c_j > 0` and column `j` ⪯ 0 certify
//!   unboundedness (growing `x_j` only loosens constraints).

use memlp_linalg::{Matrix, SparseMatrix};

use crate::problem::LpProblem;

/// Outcome of presolving.
///
/// `Reduced` carries the whole reduced problem by value; the enum is
/// matched once at the call site, never stored in bulk, so boxing would
/// only add an allocation to the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Presolved {
    /// The reduced problem plus the mapping back to original variables.
    Reduced {
        /// The smaller problem (possibly identical if nothing applied).
        lp: LpProblem,
        /// Restoration map (see [`Restore::restore_x`]).
        restore: Restore,
    },
    /// A zero row with a negative bound certifies primal infeasibility.
    Infeasible,
    /// A profitable variable no constraint limits certifies unboundedness.
    Unbounded,
}

/// Maps reduced-problem solutions back to the original variable space.
#[derive(Debug, Clone, PartialEq)]
pub struct Restore {
    /// For each original variable: `Some(k)` = position in the reduced
    /// problem, `None` = fixed at zero by presolve.
    kept_vars: Vec<Option<usize>>,
    /// Rows of the original problem kept in the reduced problem.
    kept_rows: Vec<usize>,
}

impl Restore {
    /// Lifts a reduced-space solution to the original variable order
    /// (presolve-fixed variables take value 0).
    ///
    /// # Panics
    ///
    /// Panics if `x_reduced` does not match the reduced dimension.
    pub fn restore_x(&self, x_reduced: &[f64]) -> Vec<f64> {
        self.kept_vars
            .iter()
            .map(|slot| slot.map(|k| x_reduced[k]).unwrap_or(0.0))
            .collect()
    }

    /// Lifts reduced-space duals to the original constraint order
    /// (presolve-dropped redundant rows get multiplier 0).
    ///
    /// # Panics
    ///
    /// Panics if `y_reduced` does not match the reduced row count.
    pub fn restore_y(&self, y_reduced: &[f64], original_rows: usize) -> Vec<f64> {
        let mut y = vec![0.0; original_rows];
        for (k, &row) in self.kept_rows.iter().enumerate() {
            y[row] = y_reduced[k];
        }
        y
    }

    /// Number of variables eliminated.
    pub fn vars_removed(&self) -> usize {
        self.kept_vars.iter().filter(|s| s.is_none()).count()
    }

    /// Number of rows eliminated.
    pub fn rows_removed(&self, original_rows: usize) -> usize {
        original_rows - self.kept_rows.len()
    }
}

/// Applies the presolve reductions.
pub fn presolve(lp: &LpProblem) -> Presolved {
    let m = lp.num_constraints();
    let n = lp.num_vars();

    // --- column analysis (CSR: only stored entries, which are non-zero by
    // construction, need inspecting).
    let mut col_nonneg = vec![true; n];
    let mut col_nonpos = vec![true; n];
    let mut col_zero = vec![true; n];
    for (_, j, v) in lp.sparse_a().iter() {
        col_zero[j] = false;
        if v < 0.0 {
            col_nonneg[j] = false;
        }
        if v > 0.0 {
            col_nonpos[j] = false;
        }
    }

    let mut kept_vars: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut next = 0usize;
    for j in 0..n {
        let c = lp.c()[j];
        if col_zero[j] {
            if c > 0.0 {
                return Presolved::Unbounded;
            }
            kept_vars.push(None); // free to fix at 0 (c ≤ 0)
        } else if c > 0.0 && col_nonpos[j] {
            // Profitable and only ever loosens constraints.
            return Presolved::Unbounded;
        } else if c <= 0.0 && col_nonneg[j] {
            // Never profitable, never helps feasibility: x_j = 0.
            kept_vars.push(None);
        } else {
            kept_vars.push(Some(next));
            next += 1;
        }
    }
    let reduced_n = next;
    if reduced_n == 0 {
        // Every variable fixed at zero: feasibility is decided by b ⪰ 0.
        if lp.b().iter().any(|&v| v < 0.0) {
            return Presolved::Infeasible;
        }
        // Degenerate but valid: a 1-variable zero-objective problem keeps
        // the interfaces total.
        let restore = Restore {
            kept_vars,
            kept_rows: vec![],
        };
        // memlp-lint: allow(panic::expect, reason = "literal 1x1 zero problem; statically well-formed")
        let lp = LpProblem::new(Matrix::zeros(1, 1), vec![1.0], vec![0.0]).expect("static shapes");
        return Presolved::Reduced { lp, restore };
    }

    // --- row analysis on the reduced column set (CSR row spans).
    let (row_ptr, col_idx) = (lp.sparse_a().row_ptr(), lp.sparse_a().col_idx());
    let mut kept_rows = Vec::with_capacity(m);
    for i in 0..m {
        let row_zero = col_idx[row_ptr[i]..row_ptr[i + 1]]
            .iter()
            .all(|&j| kept_vars[j].is_none());
        if row_zero {
            if lp.b()[i] < 0.0 {
                return Presolved::Infeasible;
            }
            continue; // redundant
        }
        kept_rows.push(i);
    }

    // --- assemble the reduced problem CSR-first: surviving entries become
    // triplets in the compacted coordinate space.
    let mut row_map = vec![None; m];
    for (k, &i) in kept_rows.iter().enumerate() {
        row_map[i] = Some(k);
    }
    let mut trips = Vec::with_capacity(lp.sparse_a().nnz());
    for (i, j, v) in lp.sparse_a().iter() {
        if let (Some(row), Some(col)) = (row_map[i], kept_vars[j]) {
            trips.push((row, col, v));
        }
    }
    let mut b = Vec::with_capacity(kept_rows.len().max(1));
    for &i in &kept_rows {
        b.push(lp.b()[i]);
    }
    if kept_rows.is_empty() {
        // No remaining constraints: any kept variable with c > 0 would have
        // been caught as unbounded above unless its column had mixed signs
        // in dropped rows — conservative fallback: keep one trivial row.
        b.push(f64::MAX / 4.0);
    }
    let mut c = vec![0.0; reduced_n];
    for (j, slot) in kept_vars.iter().enumerate() {
        if let Some(col) = slot {
            c[*col] = lp.c()[j];
        }
    }
    let reduced_m = kept_rows.len().max(1);
    let assemble = move || -> Result<LpProblem, crate::error::LpError> {
        let a = SparseMatrix::from_triplets(reduced_m, reduced_n, &trips)?;
        LpProblem::from_sparse(a, b, c)
    };
    match assemble() {
        Ok(lp_reduced) => Presolved::Reduced {
            lp: lp_reduced,
            restore: Restore {
                kept_vars,
                kept_rows,
            },
        },
        // Assembly only re-uses entries of the validated, finite input, so
        // construction cannot fail; stay total anyway by passing the
        // problem through unreduced.
        Err(_) => Presolved::Reduced {
            lp: lp.clone(),
            restore: Restore {
                kept_vars: (0..n).map(Some).collect(),
                kept_rows: (0..m).collect(),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(a: Vec<Vec<f64>>, b: Vec<f64>, c: Vec<f64>) -> LpProblem {
        let rows: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
        LpProblem::new(Matrix::from_rows(&rows).unwrap(), b, c).unwrap()
    }

    #[test]
    fn passthrough_when_nothing_applies() {
        let p = lp(
            vec![vec![1.0, -2.0], vec![-3.0, 1.0]],
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        );
        match presolve(&p) {
            Presolved::Reduced { lp: q, restore } => {
                assert_eq!(q, p);
                assert_eq!(restore.vars_removed(), 0);
                assert_eq!(restore.rows_removed(2), 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_row_with_negative_bound_is_infeasible() {
        let p = lp(
            vec![vec![0.0, 0.0], vec![1.0, 1.0]],
            vec![-1.0, 4.0],
            vec![1.0, 1.0],
        );
        assert_eq!(presolve(&p), Presolved::Infeasible);
    }

    #[test]
    fn redundant_zero_rows_are_dropped() {
        let p = lp(vec![vec![0.0], vec![2.0]], vec![3.0, 4.0], vec![1.0]);
        match presolve(&p) {
            Presolved::Reduced { lp: q, restore } => {
                assert_eq!(q.num_constraints(), 1);
                assert_eq!(restore.rows_removed(2), 1);
                assert_eq!(restore.restore_y(&[7.0], 2), vec![0.0, 7.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn profitable_unconstrained_variable_is_unbounded() {
        let p = lp(vec![vec![1.0, 0.0]], vec![4.0], vec![1.0, 2.0]);
        assert_eq!(presolve(&p), Presolved::Unbounded);
    }

    #[test]
    fn profitable_loosening_variable_is_unbounded() {
        // Column ⪯ 0 with positive profit.
        let p = lp(vec![vec![1.0, -1.0]], vec![4.0], vec![1.0, 0.5]);
        assert_eq!(presolve(&p), Presolved::Unbounded);
    }

    #[test]
    fn useless_variable_is_fixed_at_zero() {
        // c ≤ 0 and column ⪰ 0: x1 = 0 always optimal.
        let p = lp(vec![vec![1.0, 2.0]], vec![4.0], vec![1.0, -3.0]);
        match presolve(&p) {
            Presolved::Reduced { lp: q, restore } => {
                assert_eq!(q.num_vars(), 1);
                assert_eq!(restore.vars_removed(), 1);
                assert_eq!(restore.restore_x(&[2.5]), vec![2.5, 0.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reduction_preserves_the_optimum() {
        // Solve original and reduced with the simplex oracle... this crate
        // has no solver, so verify algebraically: optimal of
        // max x0 − 3 x1 s.t. x0 + 2 x1 ≤ 4 is x = (4, 0) with value 4; the
        // reduced problem max x0 s.t. x0 ≤ 4 has the same value.
        let p = lp(vec![vec![1.0, 2.0]], vec![4.0], vec![1.0, -3.0]);
        match presolve(&p) {
            Presolved::Reduced { lp: q, restore } => {
                assert_eq!(q.c(), &[1.0]);
                assert_eq!(q.b(), &[4.0]);
                let x = restore.restore_x(&[4.0]);
                assert!(p.is_feasible(&x, 1e-12));
                assert_eq!(p.objective(&x), 4.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_variables_fixed_degenerates_gracefully() {
        let p = lp(vec![vec![1.0]], vec![2.0], vec![-1.0]);
        match presolve(&p) {
            Presolved::Reduced { lp: q, restore } => {
                assert_eq!(restore.restore_x(&vec![0.0; q.num_vars()]), vec![0.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_fixed_with_negative_bound_is_infeasible() {
        // x fixed at 0 but constraint 0 ≤ −2 impossible.
        let p = lp(vec![vec![1.0]], vec![-2.0], vec![-1.0]);
        assert_eq!(presolve(&p), Presolved::Infeasible);
    }
}
