use std::error::Error;
use std::fmt;

use memlp_linalg::LinalgError;

/// Errors from constructing or manipulating linear programs.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// `A`, `b`, `c` shapes disagree.
    ShapeMismatch {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A coefficient is NaN or infinite.
    NonFinite {
        /// Description of where the bad value sits.
        location: String,
    },
    /// Underlying linear algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LpError::NonFinite { location } => write!(f, "non-finite coefficient at {location}"),
            LpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for LpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LpError {
    fn from(e: LinalgError) -> Self {
        LpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LpError::ShapeMismatch {
            expected: "m=2".into(),
            found: "m=3".into(),
        };
        assert!(e.to_string().contains("m=3"));
        let e = LpError::NonFinite {
            location: "b[1]".into(),
        };
        assert!(e.to_string().contains("b[1]"));
    }

    #[test]
    fn wraps_linalg() {
        let e: LpError = LinalgError::Singular { column: 1 }.into();
        assert!(Error::source(&e).is_some());
    }
}
