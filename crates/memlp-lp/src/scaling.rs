use crate::error::LpError;
use crate::problem::LpProblem;

/// Row-equilibration record: `scaled_row_i = row_i / scale_i`.
///
/// The crossbar maps coefficients onto a single shared conductance range
/// (see `memlp-crossbar::mapping`), so a constraint whose coefficients are
/// tiny relative to the matrix maximum is stored with few effective levels.
/// Dividing each row of `[A | b]` by its largest absolute entry equalizes
/// per-row dynamic range without changing the feasible region.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibration {
    /// Per-row divisors applied to `A` and `b`.
    pub row_scales: Vec<f64>,
}

impl Equilibration {
    /// Recovers the original dual variables from duals of the scaled
    /// problem: scaling row i by 1/s multiplies its dual by 1/s, so
    /// `y_original_i = y_scaled_i / s_i`.
    pub fn unscale_duals(&self, y_scaled: &[f64]) -> Vec<f64> {
        y_scaled
            .iter()
            .zip(&self.row_scales)
            .map(|(y, s)| y / s)
            .collect()
    }
}

/// Row-equilibrates a problem: every row of `[A | b]` is divided by its own
/// largest absolute entry (rows that are entirely zero are left alone).
/// The primal solution of the scaled problem equals that of the original.
///
/// # Errors
///
/// Returns [`LpError::NonFinite`] if dividing by a row's (subnormal)
/// maximum overflows a coefficient to infinity — callers should fall back
/// to the unscaled problem.
pub fn equilibrate(lp: &LpProblem) -> Result<(LpProblem, Equilibration), LpError> {
    let m = lp.num_constraints();
    let mut b = vec![0.0; m];
    let mut row_scales = vec![1.0; m];
    // CSR-first: row maxima come from the stored entries, and scaling
    // touches only those entries — the sparsity pattern is untouched.
    let mut a = lp.sparse_a().clone();
    let row_ptr = a.row_ptr().to_vec();
    for i in 0..m {
        let span = &a.values()[row_ptr[i]..row_ptr[i + 1]];
        let mut s = span.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        s = s.max(lp.b()[i].abs());
        if s == 0.0 {
            s = 1.0;
        }
        row_scales[i] = s;
        for v in &mut a.values_mut()[row_ptr[i]..row_ptr[i + 1]] {
            *v /= s;
        }
        b[i] = lp.b()[i] / s;
    }
    let scaled = LpProblem::from_sparse(a, b, lp.c().to_vec())?;
    Ok((scaled, Equilibration { row_scales }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_linalg::Matrix;

    fn lopsided() -> LpProblem {
        LpProblem::new(
            Matrix::from_rows(&[&[1000.0, 2000.0], &[0.001, 0.003]]).unwrap(),
            vec![4000.0, 0.006],
            vec![1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn rows_normalized_to_unit_max() {
        let (scaled, eq) = equilibrate(&lopsided()).unwrap();
        for i in 0..2 {
            let mut mx = scaled.b()[i].abs();
            for j in 0..2 {
                mx = mx.max(scaled.a()[(i, j)].abs());
            }
            assert!((mx - 1.0).abs() < 1e-12, "row {i} max {mx}");
        }
        assert_eq!(eq.row_scales, vec![4000.0, 0.006]);
    }

    #[test]
    fn feasible_region_preserved() {
        let lp = lopsided();
        let (scaled, _) = equilibrate(&lp).unwrap();
        for x in [[1.0, 1.0], [4.0, 0.0], [0.0, 2.1], [5.0, 5.0]] {
            assert_eq!(
                lp.is_feasible(&x, 1e-9),
                scaled.is_feasible(&x, 1e-9),
                "x = {x:?}"
            );
        }
    }

    #[test]
    fn zero_rows_untouched() {
        let lp = LpProblem::new(Matrix::zeros(1, 2), vec![0.0], vec![1.0, 1.0]).unwrap();
        let (scaled, eq) = equilibrate(&lp).unwrap();
        assert_eq!(eq.row_scales, vec![1.0]);
        assert_eq!(scaled, lp);
    }

    #[test]
    fn dual_unscaling_inverts_row_scaling() {
        let (_, eq) = equilibrate(&lopsided()).unwrap();
        let y = eq.unscale_duals(&[2.0, 3.0]);
        assert!((y[0] - 2.0 / 4000.0).abs() < 1e-15);
        assert!((y[1] - 3.0 / 0.006).abs() < 1e-12);
    }
}
