//! Random LP workload generators (the paper's §4.2 experimental setup).
//!
//! The paper evaluates on randomly generated feasible and infeasible
//! problems with m constraints (swept 4…1024) and n = m/3 variables.
//! [`RandomLp`] reproduces that recipe with three guarantees the paper's
//! methodology implies:
//!
//! * **feasible instances are certifiably optimal-bounded**: a strictly
//!   interior primal point and a dual-feasible certificate are constructed
//!   first and `b`, `c` are derived from them, so the LP provably has a
//!   finite optimum;
//! * **infeasible instances are certifiably infeasible**: a contradictory
//!   constraint pair `aᵀx ≤ β`, `−aᵀx ≤ −β − δ` (δ > 0) is planted;
//! * **mixed-sign coefficients** exercise the §3.2 negative-coefficient
//!   elimination (the fraction is configurable).

use memlp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::problem::LpProblem;

/// The interior primal point and dual certificate a feasible instance was
/// built from (strict feasibility witnesses for both the primal and the
/// dual).
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibleCertificate {
    /// Strictly positive primal point with `A·x₀ + w₀ = b`.
    pub x0: Vec<f64>,
    /// Strictly positive primal slacks.
    pub w0: Vec<f64>,
    /// Strictly positive dual multipliers with `Aᵀ·y₀ − z₀ = c`.
    pub y0: Vec<f64>,
    /// Strictly positive dual slacks (reduced costs).
    pub z0: Vec<f64>,
}

/// Configuration for random LP generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomLp {
    /// Number of constraints `m`.
    pub constraints: usize,
    /// Number of variables `n`. The paper uses `m/3`; see
    /// [`RandomLp::paper`].
    pub vars: usize,
    /// Fraction of `A` entries that are negative (in expectation).
    pub neg_fraction: f64,
    /// Fraction of `A` entries that are nonzero (in expectation).
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RandomLp {
    /// The paper's configuration: `n = max(1, m/3)`, mixed signs, dense-ish
    /// constraint rows.
    pub fn paper(constraints: usize, seed: u64) -> Self {
        RandomLp {
            constraints,
            vars: (constraints / 3).max(1),
            neg_fraction: 0.3,
            density: 1.0,
            seed,
        }
    }

    /// Generates a certifiably feasible, bounded LP.
    ///
    /// See [`RandomLp::feasible_with_certificate`] for the construction.
    pub fn feasible(&self) -> LpProblem {
        self.feasible_with_certificate().0
    }

    /// Generates a certifiably feasible, bounded LP together with the
    /// certificate used to build it.
    ///
    /// Construction: draw `A`; pick an interior primal point `x₀ > 0` with
    /// slack `w₀ > 0` and set `b = A·x₀ + w₀`; pick dual multipliers
    /// `y₀ > 0` and reduced costs `z₀ > 0` and set `c = Aᵀ·y₀ − z₀`. Both
    /// the primal and the dual are then strictly feasible, so a finite
    /// optimum exists (strong duality).
    pub fn feasible_with_certificate(&self) -> (LpProblem, FeasibleCertificate) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let a = self.random_matrix(&mut rng);

        let x0: Vec<f64> = (0..self.vars).map(|_| rng.random_range(0.1..2.0)).collect();
        let w0: Vec<f64> = (0..self.constraints)
            .map(|_| rng.random_range(0.1..1.0))
            .collect();
        let ax = a.matvec(&x0);
        let b: Vec<f64> = ax.iter().zip(&w0).map(|(v, w)| v + w).collect();

        let y0: Vec<f64> = (0..self.constraints)
            .map(|_| rng.random_range(0.1..1.0))
            .collect();
        let z0: Vec<f64> = (0..self.vars).map(|_| rng.random_range(0.1..1.0)).collect();
        let aty = a.matvec_transposed(&y0);
        let c: Vec<f64> = aty.iter().zip(&z0).map(|(v, z)| v - z).collect();

        // memlp-lint: allow(panic::expect, reason = "A, b, c are built from the same m/n and finite RNG draws; failure is a generator bug, not an input condition")
        let lp = LpProblem::new(a, b, c).expect("generated shapes are consistent");
        (lp, FeasibleCertificate { x0, w0, y0, z0 })
    }

    /// Generates a certifiably infeasible LP by planting a contradictory
    /// constraint pair inside an otherwise ordinary instance.
    ///
    /// # Panics
    ///
    /// Panics if `constraints < 2` (no room for the contradiction).
    pub fn infeasible(&self) -> LpProblem {
        assert!(
            self.constraints >= 2,
            "infeasible instances need at least 2 constraints"
        );
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x17FE));
        let base = RandomLp {
            seed: rng.random(),
            ..*self
        }
        .feasible();
        let mut a = base.a().clone();
        let mut b = base.b().to_vec();

        // Plant: aᵀx ≤ β and −aᵀx ≤ −β − δ, i.e. aᵀx ≥ β + δ. Infeasible
        // for every x. The gap δ scales with the instance's right-hand-side
        // magnitude so that infeasibility is *gross* relative to the
        // problem's own scale — the regime any solver with a finite noise
        // floor (the paper's analog hardware included) can certify.
        let row: Vec<f64> = (0..self.vars).map(|_| rng.random_range(0.2..1.0)).collect();
        let beta = rng.random_range(0.5..2.0);
        let bscale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let delta = rng.random_range(0.3..0.6) * bscale;
        let i = self.constraints - 2;
        let j = self.constraints - 1;
        for (k, &v) in row.iter().enumerate() {
            a[(i, k)] = v;
            a[(j, k)] = -v;
        }
        b[i] = beta;
        b[j] = -beta - delta;

        // memlp-lint: allow(panic::expect, reason = "planting the contradiction edits entries of an already-valid problem in place")
        LpProblem::new(a, b, base.c().to_vec()).expect("shapes unchanged")
    }

    /// Generates an unbounded LP (dual infeasible): one variable has a
    /// positive objective coefficient but only non-positive constraint
    /// coefficients, so it can grow without bound.
    pub fn unbounded(&self) -> LpProblem {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0xB0D));
        let base = self.feasible();
        let mut a = base.a().clone();
        let mut c = base.c().to_vec();
        let j = self.vars - 1;
        for i in 0..self.constraints {
            if a[(i, j)] > 0.0 {
                a[(i, j)] = -a[(i, j)];
            }
        }
        c[j] = rng.random_range(0.5..1.5);
        // memlp-lint: allow(panic::expect, reason = "sign-flipping a column of an already-valid problem preserves shapes and finiteness")
        LpProblem::new(a, base.b().to_vec(), c).expect("shapes unchanged")
    }

    fn random_matrix(&self, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(self.constraints, self.vars, |_, _| {
            if rng.random_range(0.0..1.0) >= self.density {
                return 0.0;
            }
            let magnitude = rng.random_range(0.05..1.0);
            if rng.random_range(0.0..1.0) < self.neg_fraction {
                -magnitude
            } else {
                magnitude
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        let g = RandomLp::paper(256, 1);
        assert_eq!(g.constraints, 256);
        assert_eq!(g.vars, 85);
        let lp = g.feasible();
        assert_eq!(lp.num_constraints(), 256);
        assert_eq!(lp.num_vars(), 85);
    }

    #[test]
    fn tiny_problems_get_at_least_one_var() {
        let g = RandomLp::paper(2, 1);
        assert_eq!(g.vars, 1);
    }

    #[test]
    fn feasible_certificate_holds() {
        let g = RandomLp::paper(32, 7);
        let (lp, cert) = g.feasible_with_certificate();
        // Primal: A·x₀ + w₀ = b with x₀, w₀ > 0.
        assert!(cert.x0.iter().all(|&v| v > 0.0));
        assert!(cert.w0.iter().all(|&v| v > 0.0));
        let ax = lp.a().matvec(&cert.x0);
        for ((axi, wi), bi) in ax.iter().zip(&cert.w0).zip(lp.b()) {
            assert!((axi + wi - bi).abs() < 1e-12);
        }
        assert!(lp.is_feasible(&cert.x0, 1e-9));
        // Dual: Aᵀ·y₀ − z₀ = c with y₀, z₀ > 0.
        assert!(cert.y0.iter().all(|&v| v > 0.0));
        assert!(cert.z0.iter().all(|&v| v > 0.0));
        let aty = lp.a().matvec_transposed(&cert.y0);
        for ((atyj, zj), cj) in aty.iter().zip(&cert.z0).zip(lp.c()) {
            assert!((atyj - zj - cj).abs() < 1e-12);
        }
    }

    #[test]
    fn weak_duality_bounds_certificate_objective() {
        // cᵀx₀ ≤ bᵀy₀ must hold because both certificates are feasible.
        let g = RandomLp::paper(24, 19);
        let (lp, cert) = g.feasible_with_certificate();
        let primal = lp.objective(&cert.x0);
        let dual: f64 = lp.b().iter().zip(&cert.y0).map(|(b, y)| b * y).sum();
        assert!(
            primal <= dual + 1e-9,
            "weak duality violated: {primal} > {dual}"
        );
    }

    #[test]
    fn feasible_is_deterministic_per_seed() {
        let g = RandomLp::paper(16, 42);
        assert_eq!(g.feasible(), g.feasible());
        let g2 = RandomLp::paper(16, 43);
        assert_ne!(g.feasible(), g2.feasible());
    }

    #[test]
    fn infeasible_contains_contradiction() {
        let g = RandomLp::paper(16, 3);
        let lp = g.infeasible();
        let m = lp.num_constraints();
        // Rows m-2 and m-1 are negatives of each other with b_i > -b_j gap.
        for k in 0..lp.num_vars() {
            assert!((lp.a()[(m - 2, k)] + lp.a()[(m - 1, k)]).abs() < 1e-12);
        }
        assert!(
            lp.b()[m - 2] < -lp.b()[m - 1],
            "gap must make the pair contradictory"
        );
    }

    #[test]
    fn infeasible_rejects_no_point() {
        let g = RandomLp::paper(8, 9);
        let lp = g.infeasible();
        // Spot-check a handful of candidate points.
        let n = lp.num_vars();
        for scale in [0.0, 0.5, 1.0, 3.0] {
            let x = vec![scale; n];
            assert!(
                !lp.is_feasible(&x, 1e-9),
                "x = {scale}·1 should be infeasible"
            );
        }
    }

    #[test]
    fn unbounded_has_free_direction() {
        let g = RandomLp::paper(12, 5);
        let lp = g.unbounded();
        let j = lp.num_vars() - 1;
        assert!(lp.c()[j] > 0.0);
        for i in 0..lp.num_constraints() {
            assert!(lp.a()[(i, j)] <= 0.0);
        }
    }

    #[test]
    fn neg_fraction_zero_gives_nonnegative_matrix() {
        let g = RandomLp {
            neg_fraction: 0.0,
            ..RandomLp::paper(16, 11)
        };
        let lp = g.feasible();
        assert!(lp.a().is_nonnegative());
    }

    #[test]
    fn neg_fraction_controls_sign_mix() {
        let g = RandomLp {
            neg_fraction: 0.5,
            ..RandomLp::paper(64, 13)
        };
        let lp = g.feasible();
        let negs = lp.a().as_slice().iter().filter(|v| **v < 0.0).count();
        let total = lp.a().as_slice().len();
        let frac = negs as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.1, "negative fraction {frac}");
    }

    #[test]
    fn density_controls_sparsity() {
        let g = RandomLp {
            density: 0.25,
            ..RandomLp::paper(64, 17)
        };
        let lp = g.feasible();
        let zeros = lp.a().as_slice().iter().filter(|v| **v == 0.0).count();
        let total = lp.a().as_slice().len();
        let frac = zeros as f64 / total as f64;
        assert!((frac - 0.75).abs() < 0.1, "zero fraction {frac}");
    }
}
