use std::fmt;

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Converged to an optimal primal–dual pair.
    Optimal,
    /// The primal problem was detected infeasible (the paper's §3.1/3.2
    /// detection: dual unbounded, or the final `Ax ⪯ αb` check fails).
    Infeasible,
    /// The primal problem is unbounded (dual infeasible).
    Unbounded,
    /// The iteration limit was hit before any certificate emerged.
    IterationLimit,
    /// Numerical breakdown (singular Newton system, NaN iterates) — the
    /// §4.3 variation-induced failure mode; callers may re-solve to redraw
    /// variation.
    NumericalFailure,
}

impl LpStatus {
    /// `true` for [`LpStatus::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpStatus::Optimal)
    }
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit reached",
            LpStatus::NumericalFailure => "numerical failure",
        };
        f.write_str(s)
    }
}

/// Result of an LP solve, shared by every solver in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Primal variables `x` (length n; meaningful when optimal).
    pub x: Vec<f64>,
    /// Dual variables `y` (length m; meaningful when optimal).
    pub y: Vec<f64>,
    /// Objective value `cᵀx` at termination.
    pub objective: f64,
    /// PDIP iterations performed (or pivots, for the simplex baseline).
    pub iterations: usize,
    /// `‖Ax + w − b‖∞` at termination (primal infeasibility, §3.1).
    pub primal_residual: f64,
    /// `‖Aᵀy − z − c‖∞` at termination (dual infeasibility, §3.1).
    pub dual_residual: f64,
    /// `zᵀx + yᵀw` at termination (duality gap, §3.1).
    pub duality_gap: f64,
}

impl LpSolution {
    /// A solution record for a run that failed before producing iterates.
    pub fn failed(status: LpStatus, iterations: usize) -> Self {
        LpSolution {
            status,
            x: Vec::new(),
            y: Vec::new(),
            objective: f64::NAN,
            iterations,
            primal_residual: f64::NAN,
            dual_residual: f64::NAN,
            duality_gap: f64::NAN,
        }
    }
}

impl fmt::Display for LpSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} iterations, objective {:.6e} (residuals: primal {:.2e}, dual {:.2e}, gap {:.2e})",
            self.status,
            self.iterations,
            self.objective,
            self.primal_residual,
            self.dual_residual,
            self.duality_gap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
        assert_eq!(LpStatus::Infeasible.to_string(), "infeasible");
        assert!(LpStatus::Optimal.is_optimal());
        assert!(!LpStatus::Unbounded.is_optimal());
    }

    #[test]
    fn failed_solution_is_marked() {
        let s = LpSolution::failed(LpStatus::NumericalFailure, 7);
        assert_eq!(s.status, LpStatus::NumericalFailure);
        assert_eq!(s.iterations, 7);
        assert!(s.objective.is_nan());
    }

    #[test]
    fn solution_display_nonempty() {
        let s = LpSolution::failed(LpStatus::IterationLimit, 100);
        assert!(s.to_string().contains("100"));
    }
}
