//! A plain-text LP format (a small CPLEX-LP-style dialect).
//!
//! Lets problems travel in and out of the workspace as human-readable
//! text. The dialect covers exactly the canonical form the solvers accept:
//!
//! ```text
//! \ anything after a backslash is a comment
//! max: 3 x1 + 2 x2;
//! c1: x1 + 2 x2 <= 4;
//! c2: 3 x1 + x2 <= 6;
//! c3: -x1 - x2 >= -10;     \ ≥ rows are canonicalized by negation
//! ```
//!
//! Variables are implicitly non-negative (`x ⪰ 0`), matching §3.1;
//! `min:` objectives are negated into max form.
//!
//! # Example
//!
//! ```
//! use memlp_lp::format;
//!
//! # fn main() -> Result<(), memlp_lp::LpError> {
//! let text = "max: x + y;\nc1: x + 2 y <= 4;\nc2: 3 x + y <= 6;\n";
//! let lp = format::parse(text)?;
//! assert_eq!(lp.num_vars(), 2);
//! let round_trip = format::parse(&format::write(&lp))?;
//! assert_eq!(round_trip, lp);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use memlp_linalg::Matrix;

use crate::error::LpError;
use crate::problem::LpProblem;

/// Parses the LP text format into a canonical-form problem.
///
/// Variable order is the order of first appearance.
///
/// # Errors
///
/// Returns [`LpError::ShapeMismatch`] with a line/diagnostic description
/// for any syntax problem, and [`LpError::NonFinite`] for unparseable
/// numbers.
pub fn parse(text: &str) -> Result<LpProblem, LpError> {
    // Strip comments, join into statements separated by ';'.
    let cleaned: String = text
        .lines()
        .map(|l| l.split('\\').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let statements: Vec<&str> = cleaned
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if statements.is_empty() {
        return Err(syntax("an objective statement", "empty input"));
    }

    let mut vars: Vec<String> = Vec::new();
    let mut var_index: BTreeMap<String, usize> = BTreeMap::new();
    let intern = |name: &str, vars: &mut Vec<String>, var_index: &mut BTreeMap<String, usize>| {
        if let Some(&i) = var_index.get(name) {
            i
        } else {
            let i = vars.len();
            vars.push(name.to_string());
            var_index.insert(name.to_string(), i);
            i
        }
    };

    // Objective.
    let (sense, obj_expr) = split_objective(statements[0])?;
    let obj_terms = parse_expr(obj_expr)?;
    let mut c_map: Vec<(usize, f64)> = Vec::new();
    for (coef, name) in &obj_terms {
        let i = intern(name, &mut vars, &mut var_index);
        c_map.push((i, *coef));
    }

    // Constraints.
    struct Row {
        terms: Vec<(usize, f64)>,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for stmt in &statements[1..] {
        // Optional "name:" prefix — but be careful not to eat "<=".
        let body = match stmt.find(':') {
            Some(pos) => &stmt[pos + 1..],
            None => stmt,
        };
        let (lhs, op, rhs) = split_relation(body)?;
        let rhs_val: f64 = rhs.trim().parse().map_err(|_| LpError::NonFinite {
            location: format!("right-hand side `{rhs}`"),
        })?;
        let terms = parse_expr(lhs)?;
        // Canonicalize: `expr >= r` becomes `−expr <= −r`.
        let sign = if op == "<=" { 1.0 } else { -1.0 };
        let mut row = Vec::with_capacity(terms.len());
        for (coef, name) in &terms {
            let i = intern(name, &mut vars, &mut var_index);
            row.push((i, sign * coef));
        }
        rows.push(Row {
            terms: row,
            rhs: sign * rhs_val,
        });
    }

    let n = vars.len();
    if n == 0 {
        return Err(syntax("at least one variable", "none found"));
    }
    let m = rows.len();
    let mut a = Matrix::zeros(m, n);
    let mut b = vec![0.0; m];
    for (i, row) in rows.iter().enumerate() {
        for &(j, v) in &row.terms {
            a[(i, j)] += v;
        }
        b[i] = row.rhs;
    }
    let mut c = vec![0.0; n];
    let obj_sign = if sense == Sense::Max { 1.0 } else { -1.0 };
    for (j, v) in c_map {
        c[j] += obj_sign * v;
    }
    LpProblem::new(a, b, c)
}

/// Writes a problem in the LP text format (variables named `x0…x{n−1}`).
pub fn write(lp: &LpProblem) -> String {
    let mut out = String::new();
    out.push_str("max:");
    write_expr(&mut out, lp.c(), 1.0);
    out.push_str(";\n");
    for i in 0..lp.num_constraints() {
        let _ = write!(out, "c{i}:");
        write_expr(&mut out, lp.a().row(i), 1.0);
        let _ = writeln!(out, " <= {};", fmt_num(lp.b()[i]));
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Max,
    Min,
}

fn split_objective(stmt: &str) -> Result<(Sense, &str), LpError> {
    let lower = stmt.trim_start().to_lowercase();
    if let Some(rest) = lower.strip_prefix("max") {
        let skip = stmt.len() - rest.len();
        let rest = stmt[skip..].trim_start();
        let rest = rest
            .strip_prefix(':')
            .ok_or_else(|| syntax("`max:`", stmt))?;
        Ok((Sense::Max, rest))
    } else if let Some(rest) = lower.strip_prefix("min") {
        let skip = stmt.len() - rest.len();
        let rest = stmt[skip..].trim_start();
        let rest = rest
            .strip_prefix(':')
            .ok_or_else(|| syntax("`min:`", stmt))?;
        Ok((Sense::Min, rest))
    } else {
        Err(syntax("an objective starting with `max:` or `min:`", stmt))
    }
}

fn split_relation(body: &str) -> Result<(&str, &'static str, &str), LpError> {
    if let Some(pos) = body.find("<=") {
        Ok((&body[..pos], "<=", &body[pos + 2..]))
    } else if let Some(pos) = body.find(">=") {
        Ok((&body[..pos], ">=", &body[pos + 2..]))
    } else {
        Err(syntax("a `<=` or `>=` relation", body))
    }
}

/// Parses `[+-] [coef [*]] name …` into (coefficient, name) terms.
fn parse_expr(expr: &str) -> Result<Vec<(f64, String)>, LpError> {
    let mut terms = Vec::new();
    // Insert separators before +/- so we can split into signed terms, but
    // keep exponents like `1e-3` intact.
    let mut normalized = String::with_capacity(expr.len() + 8);
    let chars: Vec<char> = expr.chars().collect();
    for (k, &ch) in chars.iter().enumerate() {
        if (ch == '+' || ch == '-') && k > 0 {
            let prev = chars[..k].iter().rev().find(|c| !c.is_whitespace());
            let is_exponent = matches!(prev, Some('e') | Some('E'))
                && chars[..k]
                    .iter()
                    .rev()
                    .nth(1)
                    .map(|c| c.is_ascii_digit() || *c == '.')
                    .unwrap_or(false);
            if !is_exponent {
                normalized.push('\u{1f}');
            }
        }
        normalized.push(ch);
    }
    for raw in normalized.split('\u{1f}') {
        let term = raw.trim();
        if term.is_empty() {
            continue;
        }
        let (sign, rest) = match term.strip_prefix('-') {
            Some(r) => (-1.0, r.trim_start()),
            None => (1.0, term.strip_prefix('+').unwrap_or(term).trim_start()),
        };
        if rest.is_empty() {
            return Err(syntax("a term after the sign", term));
        }
        // Split into leading number and variable name.
        let rest = rest.replace('*', " ");
        let mut parts = rest.split_whitespace();
        let first = parts.next().ok_or_else(|| syntax("a term", term))?;
        let (coef, name) = if first
            .chars()
            .next()
            .map(|c| c.is_ascii_digit() || c == '.')
            .unwrap_or(false)
        {
            // Either `2 x` (separate tokens) or the glued form `2x`. For
            // the glued form take the longest numeric prefix (so exponents
            // like `1e-3` are not split at the `e`).
            if let Ok(coef) = first.parse::<f64>() {
                let name = parts
                    .next()
                    .ok_or_else(|| syntax("a variable after the coefficient", term))?;
                (coef, name.to_string())
            } else {
                let (split_at, coef) = (1..first.len())
                    .rev()
                    .filter(|&k| first.is_char_boundary(k))
                    .find_map(|k| first[..k].parse::<f64>().ok().map(|coef| (k, coef)))
                    .ok_or_else(|| LpError::NonFinite {
                        location: format!("coefficient `{first}`"),
                    })?;
                if parts.next().is_some() {
                    return Err(syntax("a single `coef var` term", term));
                }
                (coef, first[split_at..].to_string())
            }
        } else {
            (1.0, first.to_string())
        };
        if parts.next().is_some() {
            return Err(syntax("a single `coef var` term", term));
        }
        if !name
            .chars()
            .next()
            .map(char::is_alphabetic)
            .unwrap_or(false)
        {
            return Err(syntax("a variable name starting with a letter", &name));
        }
        terms.push((sign * coef, name));
    }
    if terms.is_empty() {
        return Err(syntax("at least one term", expr));
    }
    Ok(terms)
}

fn write_expr(out: &mut String, coefs: &[f64], scale: f64) {
    let mut first = true;
    for (j, &v) in coefs.iter().enumerate() {
        let v = v * scale;
        if v == 0.0 {
            continue;
        }
        if first {
            if v < 0.0 {
                out.push_str(" -");
            } else {
                out.push(' ');
            }
            first = false;
        } else if v < 0.0 {
            out.push_str(" - ");
        } else {
            out.push_str(" + ");
        }
        let mag = v.abs();
        if (mag - 1.0).abs() > 1e-15 {
            let _ = write!(out, "{} ", fmt_num(mag));
        }
        let _ = write!(out, "x{j}");
    }
    if first {
        out.push_str(" 0 x0");
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn syntax(expected: &str, found: &str) -> LpError {
    LpError::ShapeMismatch {
        expected: expected.into(),
        found: found.trim().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let lp = parse("max: x + y;\nc1: x + 2 y <= 4;\nc2: 3 x + y <= 6;").unwrap();
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.c(), &[1.0, 1.0]);
        assert_eq!(lp.b(), &[4.0, 6.0]);
        assert_eq!(lp.a()[(1, 0)], 3.0);
    }

    #[test]
    fn min_objective_is_negated() {
        let lp = parse("min: 2 x;\nc: x <= 1;").unwrap();
        assert_eq!(lp.c(), &[-2.0]);
    }

    #[test]
    fn ge_rows_are_canonicalized() {
        let lp = parse("max: x;\nc: x >= 3;").unwrap();
        assert_eq!(lp.a()[(0, 0)], -1.0);
        assert_eq!(lp.b(), &[-3.0]);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let lp = parse("\\ header\nmax: x ; \\ obj\n c1 : 2x <= 4 ; \\ done\n").unwrap();
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.a()[(0, 0)], 2.0);
    }

    #[test]
    fn negative_and_fractional_coefficients() {
        let lp = parse("max: -0.5 x + 1.25 y;\nc: -x - 2.5 y <= -1;").unwrap();
        assert_eq!(lp.c(), &[-0.5, 1.25]);
        assert_eq!(lp.a()[(0, 1)], -2.5);
        assert_eq!(lp.b(), &[-1.0]);
    }

    #[test]
    fn scientific_notation_coefficients() {
        let lp = parse("max: 1e-3 x;\nc: 2E+2 x <= 1e1;").unwrap();
        assert!((lp.c()[0] - 1e-3).abs() < 1e-18);
        assert_eq!(lp.a()[(0, 0)], 200.0);
        assert_eq!(lp.b(), &[10.0]);
    }

    #[test]
    fn star_separator_allowed() {
        let lp = parse("max: 3*x;\nc: 2 * x <= 4;").unwrap();
        assert_eq!(lp.c(), &[3.0]);
        assert_eq!(lp.a()[(0, 0)], 2.0);
    }

    #[test]
    fn repeated_variables_accumulate() {
        let lp = parse("max: x + x;\nc: x + x <= 2;").unwrap();
        assert_eq!(lp.c(), &[2.0]);
        assert_eq!(lp.a()[(0, 0)], 2.0);
    }

    #[test]
    fn rejects_missing_objective() {
        assert!(parse("c: x <= 1;").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_missing_relation() {
        assert!(parse("max: x;\nc: x + 1;").is_err());
    }

    #[test]
    fn rejects_bad_rhs() {
        assert!(parse("max: x;\nc: x <= banana;").is_err());
    }

    #[test]
    fn rejects_numeric_variable_names() {
        assert!(parse("max: 2 3;\nc: x <= 1;").is_err());
    }

    #[test]
    fn write_parse_roundtrip() {
        let lp =
            parse("max: 3 x - 0.5 y + z;\nc0: x + y <= 4;\nc1: -2 x + 3 z <= -1;\nc2: y >= 1;")
                .unwrap();
        let text = write(&lp);
        let back = parse(&text).unwrap();
        assert_eq!(back, lp);
    }

    #[test]
    fn roundtrip_of_generated_problem() {
        use crate::generator::RandomLp;
        let lp = RandomLp::paper(12, 3).feasible();
        let back = parse(&write(&lp)).unwrap();
        assert_eq!(back.num_vars(), lp.num_vars());
        assert_eq!(back.num_constraints(), lp.num_constraints());
        for j in 0..lp.num_vars() {
            assert!((back.c()[j] - lp.c()[j]).abs() < 1e-12);
        }
        for i in 0..lp.num_constraints() {
            assert!((back.b()[i] - lp.b()[i]).abs() < 1e-12);
            for j in 0..lp.num_vars() {
                assert!((back.a()[(i, j)] - lp.a()[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
