//! Network routing: maximum-flow as a linear program.

use memlp_linalg::SparseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::LpError;
use crate::problem::LpProblem;

/// A capacitated directed network for max-flow routing.
///
/// Node 0 is the source and node `nodes − 1` the sink. Edges carry
/// non-negative capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxFlowNetwork {
    /// Number of nodes (≥ 2).
    pub nodes: usize,
    /// Directed edges `(from, to, capacity)`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl MaxFlowNetwork {
    /// A random layered network: `layers` layers of `width` nodes between a
    /// source and a sink, each node connected to a few nodes in the next
    /// layer. Deterministic per seed.
    pub fn random_layered(layers: usize, width: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = layers.max(1);
        let width = width.max(1);
        let nodes = 2 + layers * width;
        let sink = nodes - 1;
        let node_at = |layer: usize, slot: usize| 1 + layer * width + slot;

        let mut edges = Vec::new();
        // Source feeds the first layer.
        for s in 0..width {
            edges.push((0, node_at(0, s), rng.random_range(1.0..4.0)));
        }
        // Layer-to-layer connections (each node to ~2 forward nodes).
        for l in 0..layers - 1 {
            for s in 0..width {
                let fan = 1 + rng.random_range(0..2usize.min(width));
                for _ in 0..fan {
                    let t = rng.random_range(0..width);
                    edges.push((node_at(l, s), node_at(l + 1, t), rng.random_range(0.5..3.0)));
                }
            }
        }
        // Last layer drains into the sink.
        for s in 0..width {
            edges.push((node_at(layers - 1, s), sink, rng.random_range(1.0..4.0)));
        }
        MaxFlowNetwork { nodes, edges }
    }

    /// The classic 4-node diamond example (source → {a, b} → sink) with a
    /// cross edge; max flow is 5 (paths 0→1→3 ×2, 0→1→2→3 ×1, 0→2→3 ×2).
    pub fn diamond() -> Self {
        MaxFlowNetwork {
            nodes: 4,
            edges: vec![
                (0, 1, 3.0),
                (0, 2, 2.0),
                (1, 3, 2.0),
                (2, 3, 3.0),
                (1, 2, 1.0),
            ],
        }
    }
}

/// Encodes max-flow as a canonical-form LP.
///
/// Variables are edge flows `f_e ≥ 0`. Constraints:
/// * capacity: `f_e ≤ u_e` (one row per edge),
/// * conservation at every interior node v: `Σ_in f − Σ_out f = 0`,
///   expressed as the inequality pair `≤ 0` and `≥ 0` (canonical form has
///   no equalities).
///
/// Objective: maximize flow out of the source.
///
/// # Errors
///
/// Returns [`LpError::ShapeMismatch`] if the network has no edges or fewer
/// than two nodes.
pub fn max_flow_lp(net: &MaxFlowNetwork) -> Result<LpProblem, LpError> {
    if net.nodes < 2 || net.edges.is_empty() {
        return Err(LpError::ShapeMismatch {
            expected: "≥2 nodes and ≥1 edge".into(),
            found: format!("{} nodes, {} edges", net.nodes, net.edges.len()),
        });
    }
    let ne = net.edges.len();
    let interior = net.nodes - 2;
    let m = ne + 2 * interior;
    let mut trips = Vec::with_capacity(5 * ne);
    let mut b = vec![0.0; m];

    // Capacity rows.
    for (e, &(_, _, cap)) in net.edges.iter().enumerate() {
        trips.push((e, e, 1.0));
        b[e] = cap;
    }
    // Conservation rows for interior nodes 1..nodes-1 (only edges incident
    // to the node contribute; everything else stays structurally zero).
    for v in 1..net.nodes - 1 {
        let r_le = ne + 2 * (v - 1);
        let r_ge = r_le + 1;
        for (e, &(from, to, _)) in net.edges.iter().enumerate() {
            let coeff = if to == v { 1.0 } else { 0.0 } - if from == v { 1.0 } else { 0.0 };
            if coeff != 0.0 {
                trips.push((r_le, e, coeff));
                trips.push((r_ge, e, -coeff));
            }
        }
        b[r_le] = 0.0;
        b[r_ge] = 0.0;
    }

    // Objective: total flow leaving the source.
    let mut c = vec![0.0; ne];
    for (e, &(from, to, _)) in net.edges.iter().enumerate() {
        if from == 0 {
            c[e] += 1.0;
        }
        if to == 0 {
            c[e] -= 1.0;
        }
    }
    let a = SparseMatrix::from_triplets(m, ne, &trips)?;
    LpProblem::from_sparse(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_dimensions() {
        let lp = max_flow_lp(&MaxFlowNetwork::diamond()).unwrap();
        // 5 edges, 2 interior nodes → 5 + 4 constraints.
        assert_eq!(lp.num_vars(), 5);
        assert_eq!(lp.num_constraints(), 9);
    }

    #[test]
    fn diamond_known_max_flow_is_feasible() {
        let lp = max_flow_lp(&MaxFlowNetwork::diamond()).unwrap();
        // f(0→1)=2.5 exceeds nothing? capacities: 3,2,2,3,1.
        // A max flow of 4: f01=2, f02=2, f13=2, f23=2+? conservation at 2:
        // in 2 + cross 0 = out f23 ⇒ f23=2. Total out of source = 4.
        let f = [2.0, 2.0, 2.0, 2.0, 0.0];
        assert!(lp.is_feasible(&f, 1e-9));
        assert!((lp.objective(&f) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn flow_above_capacity_is_infeasible() {
        let lp = max_flow_lp(&MaxFlowNetwork::diamond()).unwrap();
        let f = [3.5, 0.0, 3.5, 0.0, 0.0]; // edge 0 capacity is 3
        assert!(!lp.is_feasible(&f, 1e-9));
    }

    #[test]
    fn conservation_violations_are_infeasible() {
        let lp = max_flow_lp(&MaxFlowNetwork::diamond()).unwrap();
        // Inject at node 1 without draining it.
        let f = [2.0, 0.0, 0.0, 0.0, 0.0];
        assert!(!lp.is_feasible(&f, 1e-9));
    }

    #[test]
    fn random_layered_shapes() {
        let net = MaxFlowNetwork::random_layered(3, 4, 7);
        assert_eq!(net.nodes, 14);
        assert!(!net.edges.is_empty());
        let lp = max_flow_lp(&net).unwrap();
        assert_eq!(lp.num_vars(), net.edges.len());
        assert_eq!(lp.num_constraints(), net.edges.len() + 2 * (net.nodes - 2));
    }

    #[test]
    fn random_layered_deterministic() {
        let a = MaxFlowNetwork::random_layered(2, 3, 5);
        let b = MaxFlowNetwork::random_layered(2, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_networks_rejected() {
        let err = max_flow_lp(&MaxFlowNetwork {
            nodes: 1,
            edges: vec![],
        })
        .unwrap_err();
        assert!(matches!(err, LpError::ShapeMismatch { .. }));
    }

    #[test]
    fn zero_flow_is_always_feasible() {
        let net = MaxFlowNetwork::random_layered(3, 3, 11);
        let lp = max_flow_lp(&net).unwrap();
        assert!(lp.is_feasible(&vec![0.0; lp.num_vars()], 1e-12));
    }
}
