//! Transportation problems as linear programs.

use memlp_linalg::SparseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::LpError;
use crate::problem::LpProblem;

/// A transportation problem: ship goods from suppliers to consumers at
/// minimum cost.
///
/// Variables are `x[s][d]` = units shipped from supplier `s` to consumer
/// `d` (flattened row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct TransportationProblem {
    /// Units available at each supplier.
    pub supply: Vec<f64>,
    /// Units required by each consumer.
    pub demand: Vec<f64>,
    /// Per-unit shipping cost, `cost[s][d]` flattened row-major.
    pub cost: Vec<f64>,
}

impl TransportationProblem {
    /// A random, deterministic-per-seed instance with total supply exceeding
    /// total demand by ~20% (so it is always feasible).
    pub fn random(suppliers: usize, consumers: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let suppliers = suppliers.max(1);
        let consumers = consumers.max(1);
        let demand: Vec<f64> = (0..consumers)
            .map(|_| rng.random_range(5.0..20.0))
            .collect();
        let total_demand: f64 = demand.iter().sum();
        let base_supply = 1.2 * total_demand / suppliers as f64;
        let supply: Vec<f64> = (0..suppliers)
            .map(|_| base_supply * rng.random_range(0.8..1.2))
            .collect();
        let cost: Vec<f64> = (0..suppliers * consumers)
            .map(|_| rng.random_range(1.0..10.0))
            .collect();
        TransportationProblem {
            supply,
            demand,
            cost,
        }
    }

    /// Number of suppliers.
    pub fn suppliers(&self) -> usize {
        self.supply.len()
    }

    /// Number of consumers.
    pub fn consumers(&self) -> usize {
        self.demand.len()
    }
}

/// Encodes the problem in canonical max form (cost minimization becomes
/// maximizing negated cost).
///
/// Constraints:
/// * supply: `Σ_d x[s][d] ≤ supply_s` (one row per supplier),
/// * demand: `Σ_s x[s][d] ≥ demand_d`, canonicalized to
///   `−Σ_s x[s][d] ≤ −demand_d` (one row per consumer) — these rows have
///   negative coefficients, exercising the §3.2 transform.
///
/// # Errors
///
/// Returns [`LpError::ShapeMismatch`] if `cost` is not
/// `suppliers × consumers`.
pub fn transportation_lp(tp: &TransportationProblem) -> Result<LpProblem, LpError> {
    let s = tp.suppliers();
    let d = tp.consumers();
    if tp.cost.len() != s * d {
        return Err(LpError::ShapeMismatch {
            expected: format!("cost of length {}", s * d),
            found: format!("length {}", tp.cost.len()),
        });
    }
    let n = s * d;
    let m = s + d;
    let mut trips = Vec::with_capacity(2 * n);
    let mut b = vec![0.0; m];

    for i in 0..s {
        for j in 0..d {
            trips.push((i, i * d + j, 1.0));
        }
    }
    b[..s].copy_from_slice(&tp.supply);
    for j in 0..d {
        for i in 0..s {
            trips.push((s + j, i * d + j, -1.0));
        }
        b[s + j] = -tp.demand[j];
    }

    let a = SparseMatrix::from_triplets(m, n, &trips)?;
    let c: Vec<f64> = tp.cost.iter().map(|v| -v).collect();
    LpProblem::from_sparse(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransportationProblem {
        TransportationProblem {
            supply: vec![10.0, 10.0],
            demand: vec![8.0, 7.0],
            cost: vec![1.0, 3.0, 2.0, 1.0],
        }
    }

    #[test]
    fn dimensions() {
        let lp = transportation_lp(&tiny()).unwrap();
        assert_eq!(lp.num_vars(), 4);
        assert_eq!(lp.num_constraints(), 4);
    }

    #[test]
    fn balanced_shipment_is_feasible() {
        let lp = transportation_lp(&tiny()).unwrap();
        // Ship 8 from s0→d0, 7 from s1→d1.
        assert!(lp.is_feasible(&[8.0, 0.0, 0.0, 7.0], 1e-9));
    }

    #[test]
    fn unmet_demand_is_infeasible() {
        let lp = transportation_lp(&tiny()).unwrap();
        assert!(!lp.is_feasible(&[1.0, 0.0, 0.0, 7.0], 1e-9)); // d0 short
    }

    #[test]
    fn oversupply_is_infeasible() {
        let lp = transportation_lp(&tiny()).unwrap();
        assert!(!lp.is_feasible(&[8.0, 4.0, 0.0, 7.0], 1e-9)); // s0 ships 12 > 10
    }

    #[test]
    fn objective_is_negated_cost() {
        let lp = transportation_lp(&tiny()).unwrap();
        let x = [8.0, 0.0, 0.0, 7.0];
        assert_eq!(lp.objective(&x), -(8.0 * 1.0 + 7.0 * 1.0));
    }

    #[test]
    fn demand_rows_have_negative_coefficients() {
        // This domain intentionally produces negatives for the §3.2
        // transform to chew on.
        let lp = transportation_lp(&tiny()).unwrap();
        assert!(!lp.a().is_nonnegative());
    }

    #[test]
    fn random_is_feasible_by_construction() {
        let tp = TransportationProblem::random(3, 4, 21);
        let total_supply: f64 = tp.supply.iter().sum();
        let total_demand: f64 = tp.demand.iter().sum();
        assert!(total_supply > total_demand);
        let lp = transportation_lp(&tp).unwrap();
        // Proportional shipment meets demand within supply.
        let s = tp.suppliers();
        let d = tp.consumers();
        let mut x = vec![0.0; s * d];
        for j in 0..d {
            for i in 0..s {
                x[i * d + j] = tp.demand[j] * tp.supply[i] / total_supply;
            }
        }
        assert!(lp.is_feasible(&x, 1e-6));
    }

    #[test]
    fn bad_cost_length_rejected() {
        let mut tp = tiny();
        tp.cost.pop();
        assert!(matches!(
            transportation_lp(&tp),
            Err(LpError::ShapeMismatch { .. })
        ));
    }
}
