//! Assignment problems as linear programs.

use memlp_linalg::SparseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::LpError;
use crate::problem::LpProblem;

/// An assignment problem: match `agents` agents to `agents` tasks,
/// maximizing total utility. The LP relaxation of assignment is integral
/// (its constraint matrix is totally unimodular), so the LP optimum *is*
/// the combinatorial optimum — which makes this domain a sharp correctness
/// probe for approximate solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentProblem {
    /// Utility of assigning agent `a` to task `t`, flattened row-major
    /// (`utility[a * agents + t]`).
    pub utility: Vec<f64>,
    agents: usize,
}

impl AssignmentProblem {
    /// Builds a problem from a square utility table.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::ShapeMismatch`] if `utility.len()` is not a
    /// perfect square.
    pub fn new(utility: Vec<f64>) -> Result<Self, LpError> {
        let agents = (utility.len() as f64).sqrt().round() as usize;
        if agents * agents != utility.len() || agents == 0 {
            return Err(LpError::ShapeMismatch {
                expected: "a non-empty square utility table".into(),
                found: format!("{} entries", utility.len()),
            });
        }
        Ok(AssignmentProblem { utility, agents })
    }

    /// A random instance, deterministic per seed.
    pub fn random(agents: usize, seed: u64) -> Self {
        let agents = agents.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        AssignmentProblem {
            utility: (0..agents * agents)
                .map(|_| rng.random_range(1.0..10.0))
                .collect(),
            agents,
        }
    }

    /// Number of agents (= tasks).
    pub fn agents(&self) -> usize {
        self.agents
    }

    /// Exact optimum by brute force (small instances only; O(n!)).
    ///
    /// # Panics
    ///
    /// Panics if `agents > 9` (factorial blow-up).
    pub fn brute_force_optimum(&self) -> f64 {
        assert!(self.agents <= 9, "brute force is O(n!)");
        let n = self.agents;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::NEG_INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let total: f64 = p
                .iter()
                .enumerate()
                .map(|(a, &t)| self.utility[a * n + t])
                .sum();
            if total > best {
                best = total;
            }
        });
        best
    }
}

fn permute(p: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == p.len() {
        visit(p);
        return;
    }
    for i in k..p.len() {
        p.swap(k, i);
        permute(p, k + 1, visit);
        p.swap(k, i);
    }
}

/// Encodes the assignment problem in canonical max form.
///
/// Variables `x[a][t] ∈ [0, 1]` (fractional assignment). Constraints:
/// * each agent assigned at most once: `Σ_t x[a][t] ≤ 1`,
/// * each task filled at least once: `Σ_a x[a][t] ≥ 1`, canonicalized as
///   `−Σ_a x[a][t] ≤ −1` (negative coefficients exercise the §3.2
///   transform).
///
/// # Errors
///
/// Currently infallible for a valid [`AssignmentProblem`]; the `Result`
/// mirrors the other domain encoders.
pub fn assignment_lp(ap: &AssignmentProblem) -> Result<LpProblem, LpError> {
    let n = ap.agents();
    let vars = n * n;
    let m = 2 * n;
    let mut trips = Vec::with_capacity(2 * vars);
    let mut b = vec![0.0; m];
    for agent in 0..n {
        for task in 0..n {
            trips.push((agent, agent * n + task, 1.0));
        }
    }
    b[..n].fill(1.0);
    for task in 0..n {
        for agent in 0..n {
            trips.push((n + task, agent * n + task, -1.0));
        }
        b[n + task] = -1.0;
    }
    let a = SparseMatrix::from_triplets(m, vars, &trips)?;
    LpProblem::from_sparse(a, b, ap.utility.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let ap = AssignmentProblem::random(4, 1);
        let lp = assignment_lp(&ap).unwrap();
        assert_eq!(lp.num_vars(), 16);
        assert_eq!(lp.num_constraints(), 8);
    }

    #[test]
    fn rejects_non_square() {
        assert!(AssignmentProblem::new(vec![1.0; 5]).is_err());
        assert!(AssignmentProblem::new(vec![]).is_err());
    }

    #[test]
    fn identity_assignment_is_feasible() {
        let ap = AssignmentProblem::random(3, 2);
        let lp = assignment_lp(&ap).unwrap();
        let n = ap.agents();
        let mut x = vec![0.0; n * n];
        for a in 0..n {
            x[a * n + a] = 1.0;
        }
        assert!(lp.is_feasible(&x, 1e-9));
    }

    #[test]
    fn partial_assignment_is_infeasible() {
        // Task 2 unfilled.
        let ap = AssignmentProblem::random(3, 3);
        let lp = assignment_lp(&ap).unwrap();
        let n = ap.agents();
        let mut x = vec![0.0; n * n];
        x[0] = 1.0; // agent 0 → task 0
        x[n + 1] = 1.0; // agent 1 → task 1
        assert!(!lp.is_feasible(&x, 1e-9));
    }

    #[test]
    fn brute_force_on_known_table() {
        // Utility diag 10s, off-diag 1s: optimum picks the diagonal = 20.
        let ap = AssignmentProblem::new(vec![10.0, 1.0, 1.0, 10.0]).unwrap();
        assert!((ap.brute_force_optimum() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(
            AssignmentProblem::random(3, 9),
            AssignmentProblem::random(3, 9)
        );
    }
}
