//! Production scheduling: multi-period planning as a linear program.

use memlp_linalg::SparseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::LpError;
use crate::problem::LpProblem;

/// A multi-period production planning instance.
///
/// `products` goods are produced over `periods` time periods on a shared
/// resource. Variables are `x[t][p]` = units of product `p` made in period
/// `t` (flattened row-major: `t·products + p`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionPlan {
    /// Number of time periods `T`.
    pub periods: usize,
    /// Number of products `P`.
    pub products: usize,
    /// Machine hours needed per unit of each product (length P).
    pub hours_per_unit: Vec<f64>,
    /// Machine hours available in each period (length T).
    pub capacity: Vec<f64>,
    /// Maximum cumulative demand for each product over the horizon
    /// (length P) — production beyond it cannot be sold.
    pub max_demand: Vec<f64>,
    /// Profit per unit of each product (length P).
    pub profit: Vec<f64>,
}

impl ProductionPlan {
    /// A random, deterministic-per-seed instance.
    pub fn random(periods: usize, products: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let periods = periods.max(1);
        let products = products.max(1);
        ProductionPlan {
            periods,
            products,
            hours_per_unit: (0..products).map(|_| rng.random_range(0.5..3.0)).collect(),
            capacity: (0..periods).map(|_| rng.random_range(20.0..60.0)).collect(),
            max_demand: (0..products)
                .map(|_| rng.random_range(10.0..40.0))
                .collect(),
            profit: (0..products).map(|_| rng.random_range(1.0..8.0)).collect(),
        }
    }

    /// Validates internal array lengths.
    pub fn is_valid(&self) -> bool {
        self.hours_per_unit.len() == self.products
            && self.capacity.len() == self.periods
            && self.max_demand.len() == self.products
            && self.profit.len() == self.products
            && self.hours_per_unit.iter().all(|v| *v > 0.0)
    }
}

/// Encodes the plan as a canonical-form LP.
///
/// Constraints:
/// * capacity per period: `Σ_p hours_p · x[t][p] ≤ cap_t` (T rows),
/// * demand cap per product: `Σ_t x[t][p] ≤ demand_p` (P rows).
///
/// Objective: maximize `Σ_{t,p} profit_p · x[t][p]`.
///
/// # Errors
///
/// Returns [`LpError::ShapeMismatch`] if the plan's arrays are inconsistent.
pub fn production_schedule_lp(plan: &ProductionPlan) -> Result<LpProblem, LpError> {
    if !plan.is_valid() {
        return Err(LpError::ShapeMismatch {
            expected: "consistent plan arrays".into(),
            found: format!(
                "T={}, P={}, hours={}, cap={}, demand={}, profit={}",
                plan.periods,
                plan.products,
                plan.hours_per_unit.len(),
                plan.capacity.len(),
                plan.max_demand.len(),
                plan.profit.len()
            ),
        });
    }
    let t = plan.periods;
    let p = plan.products;
    let n = t * p;
    let m = t + p;
    let mut trips = Vec::with_capacity(2 * n);
    let mut b = vec![0.0; m];

    for period in 0..t {
        for prod in 0..p {
            trips.push((period, period * p + prod, plan.hours_per_unit[prod]));
        }
    }
    b[..t].copy_from_slice(&plan.capacity);
    for prod in 0..p {
        for period in 0..t {
            trips.push((t + prod, period * p + prod, 1.0));
        }
        b[t + prod] = plan.max_demand[prod];
    }

    let mut c = vec![0.0; n];
    for period in 0..t {
        for prod in 0..p {
            c[period * p + prod] = plan.profit[prod];
        }
    }
    let a = SparseMatrix::from_triplets(m, n, &trips)?;
    LpProblem::from_sparse(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProductionPlan {
        ProductionPlan {
            periods: 2,
            products: 2,
            hours_per_unit: vec![1.0, 2.0],
            capacity: vec![10.0, 8.0],
            max_demand: vec![6.0, 5.0],
            profit: vec![3.0, 5.0],
        }
    }

    #[test]
    fn dimensions() {
        let lp = production_schedule_lp(&tiny()).unwrap();
        assert_eq!(lp.num_vars(), 4);
        assert_eq!(lp.num_constraints(), 4);
    }

    #[test]
    fn capacity_binds() {
        let lp = production_schedule_lp(&tiny()).unwrap();
        // Period 0: 1·x00 + 2·x01 ≤ 10. x = [10, 0.5, …] breaks it.
        assert!(!lp.is_feasible(&[10.0, 0.5, 0.0, 0.0], 1e-9));
        assert!(lp.is_feasible(&[6.0, 2.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn demand_binds_across_periods() {
        let lp = production_schedule_lp(&tiny()).unwrap();
        // Product 0 demand 6: 4 + 4 = 8 > 6 infeasible even under capacity.
        assert!(!lp.is_feasible(&[4.0, 0.0, 4.0, 0.0], 1e-9));
        assert!(lp.is_feasible(&[3.0, 0.0, 3.0, 0.0], 1e-9));
    }

    #[test]
    fn objective_is_profit() {
        let lp = production_schedule_lp(&tiny()).unwrap();
        let x = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(lp.objective(&x), 2.0 * 3.0 + 2.0 * 5.0);
    }

    #[test]
    fn all_coefficients_nonnegative() {
        // Scheduling LPs are crossbar-friendly without the negative
        // transform — a property the benches exploit.
        let lp = production_schedule_lp(&ProductionPlan::random(4, 3, 9)).unwrap();
        assert!(lp.a().is_nonnegative());
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let a = ProductionPlan::random(3, 2, 5);
        assert_eq!(a, ProductionPlan::random(3, 2, 5));
        assert!(a.is_valid());
    }

    #[test]
    fn invalid_plan_rejected() {
        let mut p = tiny();
        p.capacity.pop();
        assert!(matches!(
            production_schedule_lp(&p),
            Err(LpError::ShapeMismatch { .. })
        ));
    }
}
