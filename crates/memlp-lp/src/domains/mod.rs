//! Domain workloads from the paper's motivating applications.
//!
//! The introduction motivates linear programming with "routing, scheduling,
//! and other optimization problems"; these generators emit exactly those,
//! in the canonical `max cᵀx, A·x ⪯ b, x ⪰ 0` form so they can be fed to
//! any solver in the workspace (including the crossbar solvers, after the
//! §3.2 negative-coefficient transform).

mod assignment;
mod routing;
mod scheduling;
mod transport;

pub use assignment::{assignment_lp, AssignmentProblem};
pub use routing::{max_flow_lp, MaxFlowNetwork};
pub use scheduling::{production_schedule_lp, ProductionPlan};
pub use transport::{transportation_lp, TransportationProblem};
