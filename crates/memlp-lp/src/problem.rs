use memlp_linalg::{ops, Matrix, SparseMatrix};

use crate::error::LpError;

/// A linear program in the paper's canonical form (§3.1):
/// `maximize cᵀx` subject to `A·x ⪯ b`, `x ⪰ 0`.
///
/// Invariants enforced at construction: `A` is `m×n`, `b` has length `m`,
/// `c` has length `n`, and every coefficient is finite.
///
/// The constraint matrix is carried in **both** representations from
/// construction onward: the dense [`Matrix`] (the crossbar-programming and
/// dense-oracle view) and a CSR [`SparseMatrix`] (the structure-exploiting
/// digital view). The two always describe the same matrix; sparse Newton
/// paths pick by [`density`](Self::density) without any per-solve
/// conversion cost.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    a: Matrix,
    sparse_a: SparseMatrix,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl LpProblem {
    /// Builds a canonical-form problem from a dense constraint matrix (the
    /// CSR companion is extracted once here).
    ///
    /// # Errors
    ///
    /// * [`LpError::ShapeMismatch`] if `b`/`c` lengths disagree with `A`,
    /// * [`LpError::NonFinite`] if any coefficient is NaN/∞.
    pub fn new(a: Matrix, b: Vec<f64>, c: Vec<f64>) -> Result<Self, LpError> {
        if !a.as_slice().iter().all(|v| v.is_finite()) {
            return Err(LpError::NonFinite {
                location: "A".into(),
            });
        }
        let sparse_a = SparseMatrix::from_dense(&a);
        Self::from_parts(a, sparse_a, b, c)
    }

    /// Builds a canonical-form problem CSR-first: domain generators and
    /// presolve/scaling hand over the sparse matrix they assembled and the
    /// dense companion is materialized once here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_sparse(sparse_a: SparseMatrix, b: Vec<f64>, c: Vec<f64>) -> Result<Self, LpError> {
        if !sparse_a.values().iter().all(|v| v.is_finite()) {
            return Err(LpError::NonFinite {
                location: "A".into(),
            });
        }
        let a = sparse_a.to_dense();
        Self::from_parts(a, sparse_a, b, c)
    }

    fn from_parts(
        a: Matrix,
        sparse_a: SparseMatrix,
        b: Vec<f64>,
        c: Vec<f64>,
    ) -> Result<Self, LpError> {
        if b.len() != a.rows() {
            return Err(LpError::ShapeMismatch {
                expected: format!("b of length {}", a.rows()),
                found: format!("length {}", b.len()),
            });
        }
        if c.len() != a.cols() {
            return Err(LpError::ShapeMismatch {
                expected: format!("c of length {}", a.cols()),
                found: format!("length {}", c.len()),
            });
        }
        if let Some(i) = b.iter().position(|v| !v.is_finite()) {
            return Err(LpError::NonFinite {
                location: format!("b[{i}]"),
            });
        }
        if let Some(i) = c.iter().position(|v| !v.is_finite()) {
            return Err(LpError::NonFinite {
                location: format!("c[{i}]"),
            });
        }
        Ok(LpProblem { a, sparse_a, b, c })
    }

    /// Constraint matrix `A` (m×n), dense view.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Constraint matrix `A` (m×n), CSR view — same matrix as
    /// [`a`](Self::a), kept in sync from construction.
    pub fn sparse_a(&self) -> &SparseMatrix {
        &self.sparse_a
    }

    /// Fill ratio of `A` (stored non-zeros over `m·n`) — the quantity the
    /// `SolvePath::Auto` heuristic thresholds on.
    pub fn density(&self) -> f64 {
        self.sparse_a.density()
    }

    /// Right-hand side `b` (length m).
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Objective coefficients `c` (length n).
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Number of constraints `m`.
    pub fn num_constraints(&self) -> usize {
        self.a.rows()
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.a.cols()
    }

    /// Objective value `cᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        ops::dot(&self.c, x)
    }

    /// Checks primal feasibility of `x` within tolerance `tol` (relative to
    /// the magnitude of each bound): `A·x ⪯ b + tol` and `x ⪰ −tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        let ax = self.a.matvec(x);
        ax.iter()
            .zip(&self.b)
            .all(|(l, r)| *l <= r + tol * r.abs().max(1.0))
    }

    /// The paper's §3.2 relaxed constraint check `A·x ⪯ α·b` used for
    /// feasibility detection under process variation (`α` slightly above 1).
    ///
    /// Bounds are relaxed *outward*: each bound moves away from the feasible
    /// region by `(α−1)·|b_i|`, so the check is monotone in `α` regardless
    /// of the sign of `b_i`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn satisfies_relaxed(&self, x: &[f64], alpha: f64) -> bool {
        let slack = alpha - 1.0;
        if x.iter().any(|&v| v < -slack) {
            return false;
        }
        let ax = self.a.matvec(x);
        ax.iter()
            .zip(&self.b)
            .all(|(l, r)| *l <= r + slack * r.abs().max(1.0))
    }

    /// The §3.2 relaxed check with a **problem-scale** slack: every row may
    /// be violated by at most `(α−1)·max(‖b‖∞, 1)`. This is the reading
    /// appropriate for analog hardware, whose error floor is set by the
    /// global signal range rather than by each row's own bound — a row with
    /// a tiny `b_i` cannot be checked tighter than the converters resolve.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn satisfies_relaxed_scaled(&self, x: &[f64], alpha: f64) -> bool {
        let slack = (alpha - 1.0) * ops::inf_norm(&self.b).max(1.0);
        if x.iter().any(|&v| v < -slack) {
            return false;
        }
        let ax = self.a.matvec(x);
        ax.iter().zip(&self.b).all(|(l, r)| *l <= r + slack)
    }

    /// The symmetric dual, itself in canonical max form:
    /// the dual of `max cᵀx, Ax ⪯ b, x ⪰ 0` is `min bᵀy, Aᵀy ⪰ c, y ⪰ 0`,
    /// which canonicalizes to `max (−b)ᵀy, (−Aᵀ)y ⪯ −c, y ⪰ 0`.
    pub fn dual(&self) -> LpProblem {
        let at = self.a.transpose().map(|v| -v);
        let mut sat = self.sparse_a.transpose();
        for v in sat.values_mut() {
            *v = -*v;
        }
        let neg_c: Vec<f64> = self.c.iter().map(|v| -v).collect();
        let neg_b: Vec<f64> = self.b.iter().map(|v| -v).collect();
        LpProblem {
            a: at,
            sparse_a: sat,
            b: neg_c,
            c: neg_b,
        }
    }

    /// Largest absolute coefficient across `A`, `b`, `c` — the dynamic range
    /// the crossbar must represent.
    pub fn max_abs_coefficient(&self) -> f64 {
        self.a
            .max_abs()
            .max(ops::inf_norm(&self.b))
            .max(ops::inf_norm(&self.c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LpProblem {
        LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let lp = sample();
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.b(), &[4.0, 6.0]);
        assert_eq!(lp.c(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Matrix::identity(2);
        assert!(matches!(
            LpProblem::new(a.clone(), vec![1.0], vec![1.0, 1.0]),
            Err(LpError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            LpProblem::new(a, vec![1.0, 1.0], vec![1.0]),
            Err(LpError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let a = Matrix::identity(2);
        assert!(matches!(
            LpProblem::new(a.clone(), vec![1.0, f64::NAN], vec![1.0, 1.0]),
            Err(LpError::NonFinite { .. })
        ));
        assert!(matches!(
            LpProblem::new(a, vec![1.0, 1.0], vec![f64::INFINITY, 1.0]),
            Err(LpError::NonFinite { .. })
        ));
    }

    #[test]
    fn feasibility_check() {
        let lp = sample();
        assert!(lp.is_feasible(&[0.0, 0.0], 1e-12));
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-12));
        assert!(!lp.is_feasible(&[10.0, 0.0], 1e-12)); // 3·10 > 6
        assert!(!lp.is_feasible(&[-1.0, 0.0], 1e-12)); // x ≥ 0 violated
    }

    #[test]
    fn relaxed_check_is_looser() {
        let lp = sample();
        // x with Ax slightly above b: feasible only under relaxation.
        let x = [2.02 / 3.0, 0.0]; // 3x0 = 2.02·… → a1·x = 6.06 > 6
        let x = [x[0] * 3.0, x[1]]; // a1·x = 6.06
        assert!(!lp.is_feasible(&x, 1e-12));
        assert!(lp.satisfies_relaxed(&x, 1.05));
        assert!(!lp.satisfies_relaxed(&x, 1.0001));
    }

    #[test]
    fn relaxed_check_with_negative_bounds_relaxes_outward() {
        // Constraint −x ≤ −1 (i.e. x ≥ 1) with x slightly below 1.
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[-1.0]]).unwrap(),
            vec![-1.0],
            vec![1.0],
        )
        .unwrap();
        assert!(!lp.is_feasible(&[0.98], 1e-12));
        assert!(lp.satisfies_relaxed(&[0.98], 1.05));
    }

    #[test]
    fn objective_value() {
        let lp = sample();
        assert_eq!(lp.objective(&[1.0, 2.0]), 3.0);
    }

    #[test]
    fn dual_shapes_swap() {
        let lp = sample();
        let d = lp.dual();
        assert_eq!(d.num_constraints(), lp.num_vars());
        assert_eq!(d.num_vars(), lp.num_constraints());
    }

    #[test]
    fn dual_of_dual_is_primal() {
        let lp = sample();
        let dd = lp.dual().dual();
        assert_eq!(dd, lp);
    }

    #[test]
    fn weak_duality_on_sample() {
        // Any primal-feasible x and dual-feasible y satisfy cᵀx ≤ bᵀy.
        let lp = sample();
        let x = [1.0, 1.0];
        assert!(lp.is_feasible(&x, 1e-12));
        // Dual: min 4y0 + 6y1 s.t. y0+3y1 ≥ 1, 2y0+y1 ≥ 1, y ≥ 0.
        let y = [0.4, 0.2];
        assert!(y[0] + 3.0 * y[1] >= 1.0 - 1e-12);
        assert!(2.0 * y[0] + y[1] >= 1.0 - 1e-12);
        let primal = lp.objective(&x);
        let dual_obj = 4.0 * y[0] + 6.0 * y[1];
        assert!(
            primal <= dual_obj + 1e-12,
            "weak duality violated: {primal} > {dual_obj}"
        );
    }

    #[test]
    fn max_abs_coefficient() {
        let lp = sample();
        assert_eq!(lp.max_abs_coefficient(), 6.0);
    }

    #[test]
    fn sparse_view_tracks_dense() {
        let lp = sample();
        assert_eq!(lp.sparse_a().to_dense(), *lp.a());
        assert_eq!(lp.density(), 1.0);
    }

    #[test]
    fn from_sparse_round_trips() {
        use memlp_linalg::SparseMatrix;
        let sa = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, -2.0)]).unwrap();
        let lp = LpProblem::from_sparse(sa.clone(), vec![1.0, 1.0], vec![1.0, 0.0, 0.0]).unwrap();
        assert_eq!(lp.sparse_a(), &sa);
        assert_eq!(lp.a()[(1, 2)], -2.0);
        assert!((lp.density() - 2.0 / 6.0).abs() < 1e-12);
        // Shape and finiteness validation still applies on the sparse path.
        assert!(LpProblem::from_sparse(sa.clone(), vec![1.0], vec![0.0; 3]).is_err());
        let bad = SparseMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]).unwrap();
        assert!(LpProblem::from_sparse(bad, vec![1.0], vec![1.0]).is_err());
    }

    #[test]
    fn dual_keeps_sparse_in_sync() {
        let lp = sample();
        let d = lp.dual();
        assert_eq!(d.sparse_a().to_dense(), *d.a());
    }
}
