#![forbid(unsafe_code)]
//! Analog network-on-chip (NoC) coordination of multiple memristor
//! crossbar tiles.
//!
//! A single crossbar has a manufacturing size limit (paper §3.4); to reach
//! larger matrices the paper adopts analog NoC structures — a hierarchical
//! arbiter tree (Fig 3a) and a mesh (Fig 3b) — in which data stays in
//! analog form between tiles, buffered by analog switches, and arbiters
//! coordinate transfers.
//!
//! * [`NocConfig`] / [`Topology`] — the two paper topologies plus their
//!   timing/energy constants,
//! * [`TiledCrossbar`] — a matrix partitioned across a grid of
//!   [`memlp_crossbar::Crossbar`] tiles, supporting analog MVM with
//!   arbiter-side accumulation and composite analog solve, with per-hop
//!   latency/energy charged to a merged [`memlp_crossbar::CostLedger`],
//! * analog buffer noise — inter-tile buffering adds a bounded offset
//!   error, modelled as uniform noise on transferred lines.
//!
//! # Example
//!
//! ```
//! use memlp_crossbar::CrossbarConfig;
//! use memlp_linalg::Matrix;
//! use memlp_noc::{NocConfig, TiledCrossbar};
//!
//! # fn main() -> Result<(), memlp_crossbar::CrossbarError> {
//! // A 6×6 matrix on 3×3-sized tiles → 2×2 tile grid.
//! let a = Matrix::from_fn(6, 6, |i, j| if i == j { 4.0 } else { 0.3 + (i + j) as f64 * 0.05 });
//! let mut tiled = TiledCrossbar::program(&a, 3, CrossbarConfig::ideal(), NocConfig::hierarchical())?;
//! assert_eq!(tiled.tile_count(), 4);
//! let y = tiled.mvm(&[1.0; 6])?;
//! let exact = a.matvec(&[1.0; 6]);
//! assert!((y[0] - exact[0]).abs() / exact[0].abs() < 0.02);
//! # Ok(())
//! # }
//! ```

mod config;
mod tiled;

pub use config::{NocConfig, Topology};
pub use tiled::TiledCrossbar;
