/// The paper's two analog NoC structures (Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Fig 3(a): groups of `fanout` crossbars under one arbiter, groups of
    /// `fanout` arbiters under a higher-level arbiter, and so on — a
    /// centralized-controller tree.
    #[default]
    Hierarchical,
    /// Fig 3(b): a 2-D mesh of crossbars, each with a local arbiter, as in
    /// mesh NoCs of multi-core systems — distributed control.
    Mesh,
}

/// Configuration of the analog NoC fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Interconnect topology.
    pub topology: Topology,
    /// Arbiter fanout for the hierarchical topology (the paper draws 4).
    pub fanout: usize,
    /// Delay through one arbiter stage or mesh hop, s.
    pub hop_delay_s: f64,
    /// Energy to move one analog line's worth of signal across one hop, J.
    pub hop_energy_j: f64,
    /// Relative magnitude of the analog buffer offset noise added per
    /// transferred line (uniform in `±buffer_noise·max|signal|`).
    pub buffer_noise: f64,
    /// Seed for the buffer-noise draws.
    pub seed: u64,
}

impl NocConfig {
    /// Hierarchical fabric with literature-scale constants: ~1 ns arbiter
    /// stages, ~1 pJ per line-hop, 0.1% buffer offset.
    pub fn hierarchical() -> Self {
        NocConfig {
            topology: Topology::Hierarchical,
            fanout: 4,
            hop_delay_s: 1e-9,
            hop_energy_j: 1e-12,
            buffer_noise: 1e-3,
            seed: 0x0C0C,
        }
    }

    /// Mesh fabric with the same link constants.
    pub fn mesh() -> Self {
        NocConfig {
            topology: Topology::Mesh,
            ..NocConfig::hierarchical()
        }
    }

    /// Returns a copy with the given buffer-noise level.
    pub fn with_buffer_noise(self, noise: f64) -> Self {
        NocConfig {
            buffer_noise: noise,
            ..self
        }
    }

    /// Number of hops a transfer crosses on average, for `tiles` tiles.
    ///
    /// Hierarchical: up and down the arbiter tree —
    /// `2·ceil(log_fanout(tiles))`. Mesh: the mean Manhattan distance on a
    /// √tiles × √tiles grid, `≈ 2/3·√tiles` each way.
    pub fn mean_hops(&self, tiles: usize) -> f64 {
        if tiles <= 1 {
            return 0.0;
        }
        match self.topology {
            Topology::Hierarchical => {
                let depth = (tiles as f64).log(self.fanout.max(2) as f64).ceil();
                2.0 * depth
            }
            Topology::Mesh => {
                let side = (tiles as f64).sqrt();
                2.0 * (2.0 / 3.0) * side
            }
        }
    }

    /// Latency and energy to move `lines` analog lines between a tile and
    /// the accumulation point, `(seconds, joules)`.
    pub fn transfer_cost(&self, tiles: usize, lines: usize) -> (f64, f64) {
        let hops = self.mean_hops(tiles);
        // Lines within one transfer move in parallel (a bus of analog
        // switches); energy scales with lines, latency with hops.
        (
            hops * self.hop_delay_s,
            hops * self.hop_energy_j * lines as f64,
        )
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::hierarchical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_needs_no_hops() {
        assert_eq!(NocConfig::hierarchical().mean_hops(1), 0.0);
        assert_eq!(NocConfig::mesh().mean_hops(1), 0.0);
    }

    #[test]
    fn hierarchical_hops_grow_logarithmically() {
        let c = NocConfig::hierarchical();
        assert_eq!(c.mean_hops(4), 2.0); // one level
        assert_eq!(c.mean_hops(16), 4.0); // two levels
        assert_eq!(c.mean_hops(64), 6.0);
    }

    #[test]
    fn mesh_hops_grow_with_sqrt() {
        let c = NocConfig::mesh();
        let h16 = c.mean_hops(16);
        let h64 = c.mean_hops(64);
        assert!((h64 / h16 - 2.0).abs() < 1e-9, "√4 scaling expected");
    }

    #[test]
    fn mesh_costs_more_hops_than_tree_at_scale() {
        let tree = NocConfig::hierarchical();
        let mesh = NocConfig::mesh();
        assert!(mesh.mean_hops(256) > tree.mean_hops(256));
    }

    #[test]
    fn transfer_cost_scales() {
        let c = NocConfig::hierarchical();
        let (t1, e1) = c.transfer_cost(16, 10);
        let (t2, e2) = c.transfer_cost(16, 20);
        assert_eq!(t1, t2, "lines move in parallel");
        assert!((e2 - 2.0 * e1).abs() < 1e-18, "energy scales with lines");
    }

    #[test]
    fn builder_sets_noise() {
        let c = NocConfig::mesh().with_buffer_noise(0.01);
        assert_eq!(c.buffer_noise, 0.01);
        assert_eq!(c.topology, Topology::Mesh);
    }
}
