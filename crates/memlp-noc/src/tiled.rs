use memlp_crossbar::{CostLedger, Crossbar, CrossbarConfig, CrossbarError, TileOccupancy};
use memlp_linalg::parallel::{self, Threads};
use memlp_linalg::{LuFactors, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::NocConfig;

/// A matrix partitioned across a grid of crossbar tiles, coordinated by an
/// analog NoC.
///
/// Programming splits the matrix into `tile_side × tile_side` blocks, one
/// per physical crossbar. With `config.tile_elision` on (the default),
/// blocks that are entirely zero are **elided**: no tile is fabricated, no
/// pulses are spent, and the NoC never schedules the position — the
/// [`TileOccupancy`] index records which grid positions carry hardware.
/// Operations:
///
/// * **MVM** — each live tile multiplies its block by its input segment;
///   row partial sums flow through the NoC (analog buffers) to
///   accumulating arbiters. One NoC transfer per live tile is charged, and
///   buffer noise is added per nonzero partial sum (a zero-signal partial
///   induces no offset, so elided positions and zero-input live tiles are
///   indistinguishable to the noise stream — elision stays bitwise exact).
/// * **Solve** — bit-line drive voltages are distributed to the tiles and
///   the composite resistive network settles jointly; the settled state is
///   the solution of the *assembled* realized system (live tile
///   realizations stitched together, elided blocks exactly zero), read
///   back through the NoC with buffer noise.
///
/// All per-tile ledgers plus NoC transfer costs merge into one
/// [`CostLedger`]; elided positions appear in its `tiles_elided` /
/// `elided_writes` counters and nowhere else.
#[derive(Debug, Clone)]
pub struct TiledCrossbar {
    tiles: Vec<Vec<Option<Crossbar>>>, // [row_block][col_block], None = elided
    occupancy: TileOccupancy,
    rows: usize,
    cols: usize,
    tile_side: usize,
    a_max: f64,
    config: CrossbarConfig,
    noc: NocConfig,
    noise_rng: StdRng,
    noc_ledger: CostLedger,
}

impl TiledCrossbar {
    /// Partitions `matrix` into tiles of side `tile_side` and programs each
    /// live tile (setup phase), skipping all-zero blocks when
    /// `config.tile_elision` is set. Tile `(i, j)` receives a distinct RNG
    /// seed so variation draws are independent across tiles — and
    /// independent of which *other* tiles exist, so elision never shifts a
    /// live tile's stream.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::ShapeMismatch`] if `tile_side` is zero,
    /// * any programming error from the underlying tiles (negative
    ///   coefficients, size violations).
    pub fn program(
        matrix: &Matrix,
        tile_side: usize,
        config: CrossbarConfig,
        noc: NocConfig,
    ) -> Result<Self, CrossbarError> {
        if tile_side == 0 {
            return Err(CrossbarError::ShapeMismatch {
                expected: "tile side ≥ 1".into(),
                found: "0".into(),
            });
        }
        let row_blocks = matrix.rows().div_ceil(tile_side);
        let col_blocks = matrix.cols().div_ceil(tile_side);
        // One shared full-scale value so every tile maps coefficients onto
        // the same conductance scale (required for analog accumulation).
        let a_max = matrix.max_abs().max(f64::MIN_POSITIVE);
        // Occupancy is decided by the *planned* coefficients — never by
        // realized read-backs — so hardware noise can't gate scheduling.
        let mut occupancy = TileOccupancy::from_matrix(matrix, tile_side);
        let elide = config.tile_elision;
        let mut noc_ledger = CostLedger::new();

        let mut tiles = Vec::with_capacity(row_blocks);
        for bi in 0..row_blocks {
            let mut row = Vec::with_capacity(col_blocks);
            for bj in 0..col_blocks {
                let r0 = bi * tile_side;
                let c0 = bj * tile_side;
                let nr = tile_side.min(matrix.rows() - r0);
                let nc = tile_side.min(matrix.cols() - c0);
                if elide && !occupancy.is_live(bi, bj) {
                    // No hardware: no fabrication, no fault plan, no pulses.
                    noc_ledger.note_elided_tiles(1, (nr * nc) as u64);
                    row.push(None);
                    continue;
                }
                let block = matrix.block(r0, c0, nr, nc);
                let tile_cfg =
                    config.with_seed(config.seed ^ ((bi as u64) << 32) ^ (bj as u64) ^ 0x7173);
                let mut xb = Crossbar::new(tile_side, tile_cfg)?;
                xb.program_with_scale(&block, a_max)?;
                row.push(Some(xb));
            }
            tiles.push(row);
        }
        if !elide {
            // Every position carries hardware; the index reflects that.
            for bi in 0..row_blocks {
                for bj in 0..col_blocks {
                    occupancy.mark_live(bi, bj);
                }
            }
        }
        Ok(TiledCrossbar {
            tiles,
            occupancy,
            rows: matrix.rows(),
            cols: matrix.cols(),
            tile_side,
            a_max,
            config,
            noise_rng: StdRng::seed_from_u64(noc.seed),
            noc,
            noc_ledger,
        })
    }

    /// Number of physical (fabricated) tiles. With elision off this equals
    /// [`TiledCrossbar::grid_tile_count`].
    pub fn tile_count(&self) -> usize {
        self.tiles
            .iter()
            .flat_map(|r| r.iter())
            .filter(|t| t.is_some())
            .count()
    }

    /// Total grid positions (`row_blocks × col_blocks`) — the fabric
    /// geometry hop distances are computed over, live or not.
    pub fn grid_tile_count(&self) -> usize {
        self.occupancy.grid_tiles()
    }

    /// The tile occupancy index: which grid positions carry hardware.
    pub fn occupancy(&self) -> &TileOccupancy {
        &self.occupancy
    }

    /// Logical matrix dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The assembled **realized** logical matrix: every live tile's
    /// realized block (post write-quantization, variation, and stuck
    /// faults) stitched back together at its `(row, col)` offset; elided
    /// positions contribute exact zeros. This is the exact matrix the
    /// analog fabric multiplies by — digital reference computations (solve
    /// cores, property tests) compare against it.
    ///
    /// # Errors
    ///
    /// [`CrossbarError::NotProgrammed`] if any live tile lost its state.
    pub fn assembled_realized(&self) -> Result<Matrix, CrossbarError> {
        let mut assembled = Matrix::zeros(self.rows, self.cols);
        for (bi, tile_row) in self.tiles.iter().enumerate() {
            for (bj, tile) in tile_row.iter().enumerate() {
                if let Some(tile) = tile {
                    let block = tile.realized()?;
                    assembled.set_block(bi * self.tile_side, bj * self.tile_side, block);
                }
            }
        }
        Ok(assembled)
    }

    /// Merged cost ledger: every live tile plus the NoC fabric (which
    /// carries the elision counters).
    pub fn ledger(&self) -> CostLedger {
        let mut total = self.noc_ledger;
        for row in &self.tiles {
            for t in row.iter().flatten() {
                total.merge(t.ledger());
            }
        }
        total
    }

    /// Re-programs the fabric with a same-shape `matrix` (run phase): live
    /// tiles delta-program their block (unchanged conductance codes skip
    /// pulses), a previously-elided position whose block became nonzero is
    /// fabricated and receives a **real first program** — setup-phase
    /// pulses on its own per-position variation stream — and positions
    /// that stay all-zero stay elided (another round of avoided pulses,
    /// recorded in `elided_writes`). The programming-time full-scale value
    /// is retained, as in [`Crossbar::program_delta`].
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::ShapeMismatch`] on a shape change,
    /// * any tile-level programming error.
    pub fn refresh(&mut self, matrix: &Matrix) -> Result<(), CrossbarError> {
        if matrix.rows() != self.rows || matrix.cols() != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("{}x{} refresh operand", self.rows, self.cols),
                found: format!("{}x{}", matrix.rows(), matrix.cols()),
            });
        }
        let incoming = TileOccupancy::from_matrix(matrix, self.tile_side);
        for bi in 0..self.tiles.len() {
            for bj in 0..self.tiles[bi].len() {
                let r0 = bi * self.tile_side;
                let c0 = bj * self.tile_side;
                let nr = self.tile_side.min(self.rows - r0);
                let nc = self.tile_side.min(self.cols - c0);
                if let Some(xb) = self.tiles[bi][bj].as_mut() {
                    // Hardware exists: delta refresh (even if the block is
                    // now all-zero — fabricated cells must be erased).
                    xb.program_delta(&matrix.block(r0, c0, nr, nc))?;
                } else if incoming.is_live(bi, bj) {
                    // Revival: the position gains hardware now, on the same
                    // (bi, bj)-salted seed it would have used at setup.
                    let tile_cfg = self
                        .config
                        .with_seed(self.config.seed ^ ((bi as u64) << 32) ^ (bj as u64) ^ 0x7173);
                    let mut xb = Crossbar::new(self.tile_side, tile_cfg)?;
                    xb.program_with_scale(&matrix.block(r0, c0, nr, nc), self.a_max)?;
                    self.tiles[bi][bj] = Some(xb);
                    self.occupancy.mark_live(bi, bj);
                } else {
                    self.noc_ledger.note_elided_tiles(1, (nr * nc) as u64);
                }
            }
        }
        Ok(())
    }

    /// Sweeps every live tile's spare-line remap
    /// ([`Crossbar::remap_dead_lines`]); elided positions have no hardware
    /// and are never touched. Returns the summed
    /// `(rows_remapped, cols_remapped, unresolved)` over the fabric.
    pub fn remap_dead_lines(&mut self) -> (usize, usize, usize) {
        let mut rows = 0;
        let mut cols = 0;
        let mut unresolved = 0;
        for tile in self.tiles.iter_mut().flat_map(|r| r.iter_mut()).flatten() {
            let (r, c, u) = tile.remap_dead_lines();
            rows += r;
            cols += c;
            unresolved += u;
        }
        (rows, cols, unresolved)
    }

    /// Analog tiled MVM `y = A·x`, scheduling live tiles only.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ShapeMismatch`] if `x.len()` differs from
    /// the logical column count, or any tile-level error.
    pub fn mvm(&mut self, x: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        if x.len() != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("input of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        let grid = self.occupancy.grid_tiles();
        let live_cells = self.occupancy.live_cells();
        let mut y = vec![0.0; self.rows];
        let tile_side = self.tile_side;
        let cols = self.cols;
        let col_blocks = self.occupancy.col_blocks();

        // Phase 1: every live tile computes its partial product
        // concurrently. Each tile owns a private RNG stream (seeded per
        // (bi, bj) at programming time), so its variation/noise draws are
        // independent of worker scheduling — and of which other tiles
        // exist — and the partials are bit-for-bit reproducible at any
        // thread count, elided or not.
        let threads = Threads::resolve().for_flops(2 * live_cells as usize);
        let mut refs: Vec<(usize, &mut Crossbar)> = self
            .tiles
            .iter_mut()
            .flat_map(|r| r.iter_mut())
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_mut().map(|t| (idx, t)))
            .collect();
        let partials = parallel::par_map_mut(threads, &mut refs, |_, (idx, tile)| {
            let c0 = (*idx % col_blocks) * tile_side;
            let seg = &x[c0..(c0 + tile_side).min(cols)];
            tile.mvm(seg)
        });
        let idxs: Vec<usize> = refs.iter().map(|(idx, _)| *idx).collect();

        // Phase 2: partial sums ride the NoC to the accumulating arbiters
        // in fixed (bi, bj) order over the live set — the shared
        // buffer-noise RNG and the fabric ledger see exactly the serial
        // event sequence. Elided positions contribute exact zeros and no
        // events; a zero-signal partial draws no offset noise, so the
        // noise stream is identical whether an all-zero block is elided or
        // physically driven.
        let noisy_fabric = self.noc.buffer_noise > 0.0 && grid > 1;
        for (idx, partial) in idxs.into_iter().zip(partials) {
            let partial = partial?;
            let r0 = (idx / col_blocks) * tile_side;
            // Each line picks up bounded buffer offset noise.
            let scale = partial.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if noisy_fabric && scale > 0.0 {
                for (k, p) in partial.iter().enumerate() {
                    let noise =
                        self.noise_rng.random_range(-1.0..=1.0) * self.noc.buffer_noise * scale;
                    y[r0 + k] += p + noise;
                }
            } else {
                for (k, p) in partial.iter().enumerate() {
                    y[r0 + k] += p;
                }
            }
            let (t, e) = self.noc.transfer_cost(grid, partial.len());
            self.noc_ledger.charge_noc_transfer(t, e, 1);
        }
        Ok(y)
    }

    /// Analog tiled transposed MVM `x = Aᵀ·y`: every live tile drives its
    /// **word lines** with its row segment of `y` and senses the bit
    /// lines ([`Crossbar::mvm_transposed`]), so the transpose costs no
    /// second array program — tile `(bi, bj)` contributes `Aᵢⱼᵀ·y_bi`
    /// into the output segment at its *column* offset, and the partials
    /// ride the same NoC fan-in as the forward product. The tile-transpose
    /// reduction iterates live tiles only.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ShapeMismatch`] if `y.len()` differs from
    /// the logical row count, or any tile-level error.
    pub fn mvm_transposed(&mut self, y: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        if y.len() != self.rows {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("input of length {}", self.rows),
                found: format!("length {}", y.len()),
            });
        }
        let grid = self.occupancy.grid_tiles();
        let live_cells = self.occupancy.live_cells();
        let mut x = vec![0.0; self.cols];
        let tile_side = self.tile_side;
        let rows = self.rows;
        let col_blocks = self.occupancy.col_blocks();

        // Phase 1: concurrent per-tile transposed partials over the live
        // set (private RNG stream per tile, as in `mvm`).
        let threads = Threads::resolve().for_flops(2 * live_cells as usize);
        let mut refs: Vec<(usize, &mut Crossbar)> = self
            .tiles
            .iter_mut()
            .flat_map(|r| r.iter_mut())
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_mut().map(|t| (idx, t)))
            .collect();
        let partials = parallel::par_map_mut(threads, &mut refs, |_, (idx, tile)| {
            let r0 = (*idx / col_blocks) * tile_side;
            let seg = &y[r0..(r0 + tile_side).min(rows)];
            tile.mvm_transposed(seg)
        });
        let idxs: Vec<usize> = refs.iter().map(|(idx, _)| *idx).collect();

        // Phase 2: fixed-order NoC accumulation at the live tiles' *column*
        // offsets; noise and ledger events replay serially, zero-signal
        // partials drawing no offset (see `mvm`).
        let noisy_fabric = self.noc.buffer_noise > 0.0 && grid > 1;
        for (idx, partial) in idxs.into_iter().zip(partials) {
            let partial = partial?;
            let c0 = (idx % col_blocks) * tile_side;
            let scale = partial.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if noisy_fabric && scale > 0.0 {
                for (k, p) in partial.iter().enumerate() {
                    let noise =
                        self.noise_rng.random_range(-1.0..=1.0) * self.noc.buffer_noise * scale;
                    x[c0 + k] += p + noise;
                }
            } else {
                for (k, p) in partial.iter().enumerate() {
                    x[c0 + k] += p;
                }
            }
            let (t, e) = self.noc.transfer_cost(grid, partial.len());
            self.noc_ledger.charge_noc_transfer(t, e, 1);
        }
        Ok(x)
    }

    /// Analog tiled solve `A·x = b` for a square logical matrix: the live
    /// tiles settle jointly as one composite resistive network, equivalent
    /// to solving the assembled realized system (elided blocks exactly
    /// zero); the word-line read-back passes through the NoC buffers.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::ShapeMismatch`] for non-square matrices or a
    ///   wrong-length `b`,
    /// * [`CrossbarError::Linalg`] if the assembled realized system is
    ///   singular,
    /// * [`CrossbarError::NotProgrammed`] if any live tile lost its state.
    pub fn solve(&mut self, b: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        if self.rows != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: "square logical matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("rhs of length {}", self.rows),
                found: format!("length {}", b.len()),
            });
        }
        // Assemble the realized system the composite network embodies
        // (cheap block copies; the LU below runs on the threaded kernels).
        let assembled = self.assembled_realized()?;
        let mut x = LuFactors::factor(assembled)?.solve(b)?;
        // Read-back through NoC buffers: bounded offset per line. The
        // fabric geometry (grid), not the population, decides whether the
        // read-back crosses buffers.
        let grid = self.occupancy.grid_tiles();
        let live = self.tile_count();
        if self.noc.buffer_noise > 0.0 && grid > 1 {
            let scale = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for v in &mut x {
                *v += self.noise_rng.random_range(-1.0..=1.0) * self.noc.buffer_noise * scale;
            }
        }
        // Charge: one settle on every live tile (they participate jointly)
        // plus the read-back transfers — an elided position has no array to
        // settle and nothing to transfer.
        let (t, e) = self.noc.transfer_cost(grid, self.rows);
        self.noc_ledger
            .charge_noc_transfer(t * live as f64, e * live as f64, live as u64);
        Ok(x)
    }

    /// Analog tiled solve via **block-Jacobi relaxation** — the
    /// architectural alternative to the composite settling of
    /// [`TiledCrossbar::solve`]: instead of assuming the inter-tile analog
    /// fabric lets the whole network settle as one system, each *diagonal*
    /// tile solves its own block in O(1) and the off-diagonal couplings are
    /// exchanged as tiled MVM partial sums over the NoC, iterating
    ///
    /// ```text
    /// x_i ← D_ii⁻¹ · (b_i − Σ_{j≠i} A_ij · x_j)
    /// ```
    ///
    /// until the update stops moving. Elided off-diagonal couplings are
    /// exact zeros and cost no fabric traffic. Converges when the block
    /// diagonal dominates (it charges per-sweep NoC + analog costs, so the
    /// ledger shows the latency price of not having composite settling).
    ///
    /// # Errors
    ///
    /// Shape errors as in [`TiledCrossbar::solve`];
    /// [`CrossbarError::Linalg`] with a `Singular` source if a diagonal
    /// block is all-zero (elided — the relaxation has no pivot block), or
    /// a `NotConverged` source if `sweeps` relaxations do not reach `tol`
    /// (relative to `‖b‖∞`).
    pub fn solve_block_jacobi(
        &mut self,
        b: &[f64],
        sweeps: usize,
        tol: f64,
    ) -> Result<Vec<f64>, CrossbarError> {
        if self.rows != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: "square logical matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("rhs of length {}", self.rows),
                found: format!("length {}", b.len()),
            });
        }
        let bnorm = b.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        let blocks = self.tiles.len();
        let grid = self.occupancy.grid_tiles();
        let tile_side = self.tile_side;
        let cols = self.cols;
        let mut x = vec![0.0; self.rows];
        for sweep in 1..=sweeps {
            let mut max_delta = 0.0f64;
            for bi in 0..blocks {
                let r0 = bi * tile_side;
                let rows_here = tile_side.min(self.rows - r0);
                // Off-diagonal couplings via per-tile analog MVMs over the
                // live set, fanned out concurrently (each tile has a
                // private RNG stream); accumulation into the rhs stays in
                // fixed bj order.
                let mut rhs: Vec<f64> = b[r0..r0 + rows_here].to_vec();
                let threads = Threads::resolve().for_flops(2 * rows_here * self.cols);
                let mut refs: Vec<(usize, &mut Crossbar)> = self.tiles[bi]
                    .iter_mut()
                    .enumerate()
                    .filter(|(bj, _)| *bj != bi)
                    .filter_map(|(bj, slot)| slot.as_mut().map(|t| (bj, t)))
                    .collect();
                let partials = parallel::par_map_mut(threads, &mut refs, |_, (bj, tile)| {
                    let c0 = *bj * tile_side;
                    let seg = &x[c0..(c0 + tile_side).min(cols)];
                    tile.mvm(seg)
                });
                for partial in partials {
                    let partial = partial?;
                    for (r, p) in rhs.iter_mut().zip(&partial) {
                        *r -= p;
                    }
                    let (t, e) = self.noc.transfer_cost(grid, partial.len());
                    self.noc_ledger.charge_noc_transfer(t, e, 1);
                }
                // Diagonal tile solves its block in O(1); an elided
                // diagonal block is all-zero — structurally singular.
                let Some(diag) = self.tiles[bi][bi].as_mut() else {
                    return Err(CrossbarError::Linalg(memlp_linalg::LinalgError::Singular {
                        column: r0,
                    }));
                };
                let xi = diag.solve(&rhs)?;
                for (k, v) in xi.iter().enumerate() {
                    max_delta = max_delta.max((v - x[r0 + k]).abs());
                    x[r0 + k] = *v;
                }
            }
            if max_delta <= tol * bnorm {
                return Ok(x);
            }
            let _ = sweep;
        }
        Err(CrossbarError::Linalg(
            memlp_linalg::LinalgError::NotConverged {
                iterations: sweeps,
                residual: f64::NAN,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_matrix(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let base = 0.2 + ((i * 31 + j * 17) % 13) as f64 * 0.05;
            if i == j {
                base + 5.0
            } else {
                base
            }
        })
    }

    /// 12×12 at tile side 4: a 3×3 grid where only the diagonal blocks and
    /// the (0, 2) block are nonzero — 4 live, 5 elided.
    fn block_sparse_matrix() -> Matrix {
        Matrix::from_fn(12, 12, |i, j| {
            let (bi, bj) = (i / 4, j / 4);
            if bi == bj || (bi == 0 && bj == 2) {
                0.3 + ((i * 7 + j * 5) % 9) as f64 * 0.1 + if i == j { 4.0 } else { 0.0 }
            } else {
                0.0
            }
        })
    }

    #[test]
    fn tile_grid_covers_matrix() {
        let a = big_matrix(10);
        let t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::hierarchical())
            .unwrap();
        assert_eq!(t.tile_count(), 9); // ceil(10/4)² = 3²
        assert_eq!(t.grid_tile_count(), 9);
        assert_eq!(t.shape(), (10, 10));
    }

    #[test]
    fn zero_tiles_are_elided() {
        let a = block_sparse_matrix();
        let t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::hierarchical())
            .unwrap();
        assert_eq!(t.grid_tile_count(), 9);
        assert_eq!(t.tile_count(), 4, "only live blocks fabricated");
        assert_eq!(t.occupancy().live_tiles(), 4);
        let counts = t.ledger().counts();
        assert_eq!(counts.tiles_elided, 5);
        assert_eq!(counts.elided_writes, 5 * 16);
        assert_eq!(counts.setup_writes, 4 * 16, "live tiles pay full pulses");
    }

    #[test]
    fn elision_off_fabricates_the_full_grid() {
        let a = block_sparse_matrix();
        let cfg = CrossbarConfig::ideal().with_tile_elision(false);
        let t = TiledCrossbar::program(&a, 4, cfg, NocConfig::hierarchical()).unwrap();
        assert_eq!(t.tile_count(), 9);
        assert_eq!(t.occupancy().live_tiles(), 9);
        let counts = t.ledger().counts();
        assert_eq!(counts.tiles_elided, 0);
        assert_eq!(counts.setup_writes, 9 * 16);
    }

    #[test]
    fn elided_mvm_is_bitwise_identical_to_dense() {
        let a = block_sparse_matrix();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.01);
        let cfg = CrossbarConfig::paper_default().with_variation(5.0);
        let mut on = TiledCrossbar::program(&a, 4, cfg, noc).unwrap();
        let mut off = TiledCrossbar::program(&a, 4, cfg.with_tile_elision(false), noc).unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let y_on = on.mvm(&x).unwrap();
        let y_off = off.mvm(&x).unwrap();
        assert_eq!(y_on, y_off, "elision must not change the MVM bits");
        let xt_on = on.mvm_transposed(&x).unwrap();
        let xt_off = off.mvm_transposed(&x).unwrap();
        assert_eq!(xt_on, xt_off);
        // But the fabric traffic differs: live tiles only.
        assert!(
            on.ledger().counts().noc_transfers < off.ledger().counts().noc_transfers,
            "elision must cut NoC transfers"
        );
    }

    #[test]
    fn refresh_revives_elided_tiles_with_a_first_program() {
        let a = block_sparse_matrix();
        let cfg = CrossbarConfig::ideal();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, cfg, noc).unwrap();
        assert!(!t.occupancy().is_live(1, 0));
        let before = t.ledger().counts().setup_writes;

        // Make block (1, 0) live; everything else keeps its values.
        let mut b = a.clone();
        b[(5, 1)] = 2.5;
        t.refresh(&b).unwrap();
        assert!(t.occupancy().is_live(1, 0), "revived in the index");
        assert_eq!(t.tile_count(), 5);
        let counts = t.ledger().counts();
        assert_eq!(
            counts.setup_writes,
            before + 16,
            "revival is a real first program"
        );
        // The other four elided positions were skipped again.
        assert_eq!(counts.tiles_elided, 5 + 4);

        let y = t.mvm(&[1.0; 12]).unwrap();
        let exact = b.matvec(&[1.0; 12]);
        for (got, want) in y.iter().zip(&exact) {
            assert!((got - want).abs() < 2e-3 * want.abs().max(1.0));
        }
    }

    #[test]
    fn refresh_rejects_shape_changes() {
        let a = block_sparse_matrix();
        let mut t =
            TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::default()).unwrap();
        let wrong = Matrix::zeros(10, 12);
        assert!(matches!(
            t.refresh(&wrong),
            Err(CrossbarError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn remap_sweep_never_touches_elided_positions() {
        let a = block_sparse_matrix();
        let mut t =
            TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::default()).unwrap();
        let occ_before = t.occupancy().clone();
        let (r, c, u) = t.remap_dead_lines();
        assert_eq!(
            (r, c, u),
            (0, 0, 0),
            "fault-free fabric has nothing to remap"
        );
        assert_eq!(t.occupancy(), &occ_before, "remap never changes occupancy");
    }

    #[test]
    fn elided_solve_matches_dense_solve() {
        let a = block_sparse_matrix();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let b = vec![1.0; 12];
        let mut on = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let mut off =
            TiledCrossbar::program(&a, 4, CrossbarConfig::ideal().with_tile_elision(false), noc)
                .unwrap();
        let x_on = on.solve(&b).unwrap();
        let x_off = off.solve(&b).unwrap();
        assert_eq!(x_on, x_off, "assembled system is identical");
    }

    #[test]
    fn tiled_mvm_matches_monolithic_when_ideal() {
        let a = big_matrix(12);
        let cfg = CrossbarConfig::ideal();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 5, cfg, noc).unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let y = t.mvm(&x).unwrap();
        let exact = a.matvec(&x);
        for (got, want) in y.iter().zip(&exact) {
            assert!(
                (got - want).abs() < 2e-3 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn tiled_transposed_mvm_matches_monolithic_when_ideal() {
        // Rectangular so the row/column tile offsets genuinely swap.
        let a = Matrix::from_fn(12, 9, |i, j| 0.2 + ((i * 29 + j * 13) % 11) as f64 * 0.07);
        let cfg = CrossbarConfig::ideal();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 5, cfg, noc).unwrap();
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.9).cos()).collect();
        let x = t.mvm_transposed(&y).unwrap();
        assert_eq!(x.len(), 9);
        let exact = a.matvec_transposed(&y);
        for (got, want) in x.iter().zip(&exact) {
            assert!(
                (got - want).abs() < 2e-3 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
        // Wrong input length (columns instead of rows) is rejected.
        assert!(t.mvm_transposed(&[1.0; 9]).is_err());
        // The transposed fan-in pays the same NoC traffic as the forward
        // product: one transfer per tile.
        assert_eq!(t.ledger().counts().noc_transfers, 6); // 3×2 tiles
    }

    #[test]
    fn tiled_solve_matches_exact_when_ideal() {
        let a = big_matrix(9);
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let b = vec![1.0; 9];
        let x = t.solve(&b).unwrap();
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 5e-2, "{got} vs {want}");
        }
    }

    #[test]
    fn buffer_noise_perturbs_but_is_bounded() {
        let a = big_matrix(8);
        let noc = NocConfig::hierarchical().with_buffer_noise(0.01);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let x = vec![1.0; 8];
        let y = t.mvm(&x).unwrap();
        let exact = a.matvec(&x);
        let mut any_diff = false;
        for (got, want) in y.iter().zip(&exact) {
            let rel = (got - want).abs() / want.abs().max(1.0);
            assert!(rel < 0.1, "noise too large: {rel}");
            if rel > 1e-6 {
                any_diff = true;
            }
        }
        assert!(any_diff, "1% buffer noise should be visible");
    }

    #[test]
    fn noc_transfers_are_charged() {
        let a = big_matrix(8);
        let mut t =
            TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::mesh()).unwrap();
        t.mvm(&[1.0; 8]).unwrap();
        let ledger = t.ledger();
        assert_eq!(ledger.counts().noc_transfers, 4); // 2×2 tiles
        assert!(
            ledger.counts().setup_writes > 0,
            "tile programming recorded"
        );
    }

    #[test]
    fn mesh_spends_more_noc_time_than_tree_at_scale() {
        let a = big_matrix(32);
        let run = |noc: NocConfig| {
            let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
            t.mvm(&vec![1.0; 32]).unwrap();
            t.ledger().run_time_s()
        };
        let tree = run(NocConfig::hierarchical().with_buffer_noise(0.0));
        let mesh = run(NocConfig::mesh().with_buffer_noise(0.0));
        assert!(mesh > tree, "mesh {mesh} vs tree {tree}");
    }

    #[test]
    fn rejects_zero_tile_side() {
        let a = big_matrix(4);
        assert!(matches!(
            TiledCrossbar::program(&a, 0, CrossbarConfig::ideal(), NocConfig::default()),
            Err(CrossbarError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_input_lengths() {
        let a = big_matrix(6);
        let mut t =
            TiledCrossbar::program(&a, 3, CrossbarConfig::ideal(), NocConfig::default()).unwrap();
        assert!(t.mvm(&[1.0; 5]).is_err());
        assert!(t.solve(&[1.0; 5]).is_err());
    }

    #[test]
    fn rectangular_solve_rejected() {
        let a = Matrix::from_fn(4, 6, |i, j| 1.0 + (i + j) as f64 * 0.1);
        let mut t =
            TiledCrossbar::program(&a, 3, CrossbarConfig::ideal(), NocConfig::default()).unwrap();
        assert!(t.solve(&[1.0; 4]).is_err());
        assert_eq!(t.mvm(&[1.0; 6]).unwrap().len(), 4);
    }

    #[test]
    fn block_jacobi_matches_composite_solve() {
        // Strongly block-diagonally dominant system: relaxation converges
        // and must land on the same solution as composite settling.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            let same_block = i / 4 == j / 4;
            if i == j {
                10.0
            } else if same_block {
                0.8
            } else {
                0.1 + ((i + j) % 3) as f64 * 0.05
            }
        });
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let b = vec![1.0; n];

        let mut t1 = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let x_composite = t1.solve(&b).unwrap();

        let mut t2 = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let x_jacobi = t2.solve_block_jacobi(&b, 200, 1e-6).unwrap();

        for (c, j) in x_composite.iter().zip(&x_jacobi) {
            assert!((c - j).abs() < 1e-2, "composite {c} vs jacobi {j}");
        }
        // The iterative scheme pays many more NoC transfers.
        assert!(
            t2.ledger().counts().noc_transfers > t1.ledger().counts().noc_transfers,
            "block-Jacobi should cost more fabric traffic"
        );
    }

    #[test]
    fn block_jacobi_elides_dead_couplings() {
        // Block-diagonal system: every off-diagonal coupling is elided, so
        // the relaxation converges in one sweep with zero coupling traffic.
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i / 4 == j / 4 {
                if i == j {
                    6.0
                } else {
                    0.5
                }
            } else {
                0.0
            }
        });
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        assert_eq!(t.tile_count(), 2);
        let x = t.solve_block_jacobi(&vec![1.0; n], 10, 1e-9).unwrap();
        let back = a.matvec(&x);
        for v in &back {
            assert!((v - 1.0).abs() < 1e-2);
        }
        // No off-diagonal hardware → no coupling transfers at all.
        assert_eq!(t.ledger().counts().noc_transfers, 0);
    }

    #[test]
    fn block_jacobi_reports_elided_diagonal_as_singular() {
        // The (1, 1) diagonal block is all-zero: elided, so the relaxation
        // has no pivot block to invert.
        let n = 8;
        let a = Matrix::from_fn(
            n,
            n,
            |i, j| {
                if i < 4 && j < 4 && i == j {
                    3.0
                } else {
                    0.0
                }
            },
        );
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let err = t.solve_block_jacobi(&vec![1.0; n], 10, 1e-9).unwrap_err();
        assert!(matches!(err, CrossbarError::Linalg(_)), "{err}");
    }

    #[test]
    fn block_jacobi_reports_divergence() {
        // Off-diagonal-dominant system: relaxation cannot converge.
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 2.0 });
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let err = t.solve_block_jacobi(&vec![1.0; n], 30, 1e-9).unwrap_err();
        assert!(matches!(err, CrossbarError::Linalg(_)), "{err}");
    }

    #[test]
    fn variation_affects_tiles_independently() {
        let a = big_matrix(8);
        let cfg = CrossbarConfig::paper_default().with_variation(10.0);
        let mut t = TiledCrossbar::program(&a, 4, cfg, NocConfig::default()).unwrap();
        let y = t.mvm(&[1.0; 8]).unwrap();
        let exact = a.matvec(&[1.0; 8]);
        // Perturbed but sane.
        for (got, want) in y.iter().zip(&exact) {
            assert!((got - want).abs() / want.abs().max(1.0) < 0.2);
        }
    }
}
