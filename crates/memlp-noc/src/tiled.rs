use memlp_crossbar::{CostLedger, Crossbar, CrossbarConfig, CrossbarError};
use memlp_linalg::parallel::{self, Threads};
use memlp_linalg::{LuFactors, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::NocConfig;

/// A matrix partitioned across a grid of crossbar tiles, coordinated by an
/// analog NoC.
///
/// Programming splits the matrix into `tile_side × tile_side` blocks, one
/// per physical crossbar. Operations:
///
/// * **MVM** — each tile multiplies its block by its input segment; row
///   partial sums flow through the NoC (analog buffers) to accumulating
///   arbiters. One NoC transfer per tile is charged, and buffer noise is
///   added per partial sum.
/// * **Solve** — bit-line drive voltages are distributed to the tiles and
///   the composite resistive network settles jointly; the settled state is
///   the solution of the *assembled* realized system (tile realizations
///   stitched together), read back through the NoC with buffer noise.
///
/// All per-tile ledgers plus NoC transfer costs merge into one
/// [`CostLedger`].
#[derive(Debug, Clone)]
pub struct TiledCrossbar {
    tiles: Vec<Vec<Crossbar>>, // [row_block][col_block]
    rows: usize,
    cols: usize,
    tile_side: usize,
    noc: NocConfig,
    noise_rng: StdRng,
    noc_ledger: CostLedger,
}

impl TiledCrossbar {
    /// Partitions `matrix` into tiles of side `tile_side` and programs each
    /// tile (setup phase). Tile `(i, j)` receives a distinct RNG seed so
    /// variation draws are independent across tiles.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::ShapeMismatch`] if `tile_side` is zero,
    /// * any programming error from the underlying tiles (negative
    ///   coefficients, size violations).
    pub fn program(
        matrix: &Matrix,
        tile_side: usize,
        config: CrossbarConfig,
        noc: NocConfig,
    ) -> Result<Self, CrossbarError> {
        if tile_side == 0 {
            return Err(CrossbarError::ShapeMismatch {
                expected: "tile side ≥ 1".into(),
                found: "0".into(),
            });
        }
        let row_blocks = matrix.rows().div_ceil(tile_side);
        let col_blocks = matrix.cols().div_ceil(tile_side);
        // One shared full-scale value so every tile maps coefficients onto
        // the same conductance scale (required for analog accumulation).
        let a_max = matrix.max_abs().max(f64::MIN_POSITIVE);

        let mut tiles = Vec::with_capacity(row_blocks);
        for bi in 0..row_blocks {
            let mut row = Vec::with_capacity(col_blocks);
            for bj in 0..col_blocks {
                let r0 = bi * tile_side;
                let c0 = bj * tile_side;
                let nr = tile_side.min(matrix.rows() - r0);
                let nc = tile_side.min(matrix.cols() - c0);
                let block = matrix.block(r0, c0, nr, nc);
                let tile_cfg =
                    config.with_seed(config.seed ^ ((bi as u64) << 32) ^ (bj as u64) ^ 0x7173);
                let mut xb = Crossbar::new(tile_side, tile_cfg)?;
                xb.program_with_scale(&block, a_max)?;
                row.push(xb);
            }
            tiles.push(row);
        }
        Ok(TiledCrossbar {
            tiles,
            rows: matrix.rows(),
            cols: matrix.cols(),
            tile_side,
            noise_rng: StdRng::seed_from_u64(noc.seed),
            noc,
            noc_ledger: CostLedger::new(),
        })
    }

    /// Number of physical tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.iter().map(|r| r.len()).sum()
    }

    /// Logical matrix dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The assembled **realized** logical matrix: every tile's realized
    /// block (post write-quantization, variation, and stuck faults)
    /// stitched back together at its `(row, col)` offset. This is the
    /// exact matrix the analog fabric multiplies by — digital reference
    /// computations (solve cores, property tests) compare against it.
    ///
    /// # Errors
    ///
    /// [`CrossbarError::NotProgrammed`] if any tile was never programmed.
    pub fn assembled_realized(&self) -> Result<Matrix, CrossbarError> {
        let mut assembled = Matrix::zeros(self.rows, self.cols);
        for (bi, tile_row) in self.tiles.iter().enumerate() {
            for (bj, tile) in tile_row.iter().enumerate() {
                let block = tile.realized()?;
                assembled.set_block(bi * self.tile_side, bj * self.tile_side, block);
            }
        }
        Ok(assembled)
    }

    /// Merged cost ledger: every tile plus the NoC fabric.
    pub fn ledger(&self) -> CostLedger {
        let mut total = self.noc_ledger;
        for row in &self.tiles {
            for t in row {
                total.merge(t.ledger());
            }
        }
        total
    }

    /// Analog tiled MVM `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ShapeMismatch`] if `x.len()` differs from
    /// the logical column count, or any tile-level error.
    pub fn mvm(&mut self, x: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        if x.len() != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("input of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        let tile_count = self.tile_count();
        let mut y = vec![0.0; self.rows];
        let tile_side = self.tile_side;
        let cols = self.cols;
        let col_blocks = self.tiles.first().map_or(0, |r| r.len());

        // Phase 1: every tile computes its partial product concurrently.
        // Each tile owns a private RNG stream (seeded per (bi, bj) at
        // programming time), so its variation/noise draws are independent
        // of worker scheduling and the partials are bit-for-bit
        // reproducible at any thread count.
        let threads = Threads::resolve().for_flops(2 * self.rows * self.cols);
        let mut refs: Vec<&mut Crossbar> =
            self.tiles.iter_mut().flat_map(|r| r.iter_mut()).collect();
        let partials = parallel::par_map_mut(threads, &mut refs, |idx, tile| {
            let c0 = (idx % col_blocks) * tile_side;
            let seg = &x[c0..(c0 + tile_side).min(cols)];
            tile.mvm(seg)
        });

        // Phase 2: partial sums ride the NoC to the accumulating arbiters
        // in fixed (bi, bj) order — the shared buffer-noise RNG and the
        // fabric ledger see exactly the serial event sequence.
        for (idx, partial) in partials.into_iter().enumerate() {
            let partial = partial?;
            let r0 = (idx / col_blocks) * tile_side;
            // Each line picks up bounded buffer offset noise.
            let scale = partial.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (k, p) in partial.iter().enumerate() {
                let noise = if self.noc.buffer_noise > 0.0 && tile_count > 1 {
                    self.noise_rng.random_range(-1.0..=1.0) * self.noc.buffer_noise * scale
                } else {
                    0.0
                };
                y[r0 + k] += p + noise;
            }
            let (t, e) = self.noc.transfer_cost(tile_count, partial.len());
            self.noc_ledger.charge_noc_transfer(t, e, 1);
        }
        Ok(y)
    }

    /// Analog tiled transposed MVM `x = Aᵀ·y`: every tile drives its
    /// **word lines** with its row segment of `y` and senses the bit
    /// lines ([`Crossbar::mvm_transposed`]), so the transpose costs no
    /// second array program — tile `(bi, bj)` contributes `Aᵢⱼᵀ·y_bi`
    /// into the output segment at its *column* offset, and the partials
    /// ride the same NoC fan-in as the forward product.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ShapeMismatch`] if `y.len()` differs from
    /// the logical row count, or any tile-level error.
    pub fn mvm_transposed(&mut self, y: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        if y.len() != self.rows {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("input of length {}", self.rows),
                found: format!("length {}", y.len()),
            });
        }
        let tile_count = self.tile_count();
        let mut x = vec![0.0; self.cols];
        let tile_side = self.tile_side;
        let rows = self.rows;
        let col_blocks = self.tiles.first().map_or(0, |r| r.len());

        // Phase 1: concurrent per-tile transposed partials (private RNG
        // stream per tile, as in `mvm`).
        let threads = Threads::resolve().for_flops(2 * self.rows * self.cols);
        let mut refs: Vec<&mut Crossbar> =
            self.tiles.iter_mut().flat_map(|r| r.iter_mut()).collect();
        let partials = parallel::par_map_mut(threads, &mut refs, |idx, tile| {
            let r0 = (idx / col_blocks) * tile_side;
            let seg = &y[r0..(r0 + tile_side).min(rows)];
            tile.mvm_transposed(seg)
        });

        // Phase 2: fixed-order NoC accumulation at the tiles' *column*
        // offsets; noise and ledger events replay serially.
        for (idx, partial) in partials.into_iter().enumerate() {
            let partial = partial?;
            let c0 = (idx % col_blocks) * tile_side;
            let scale = partial.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (k, p) in partial.iter().enumerate() {
                let noise = if self.noc.buffer_noise > 0.0 && tile_count > 1 {
                    self.noise_rng.random_range(-1.0..=1.0) * self.noc.buffer_noise * scale
                } else {
                    0.0
                };
                x[c0 + k] += p + noise;
            }
            let (t, e) = self.noc.transfer_cost(tile_count, partial.len());
            self.noc_ledger.charge_noc_transfer(t, e, 1);
        }
        Ok(x)
    }

    /// Analog tiled solve `A·x = b` for a square logical matrix: the tiles
    /// settle jointly as one composite resistive network, equivalent to
    /// solving the assembled realized system; the word-line read-back
    /// passes through the NoC buffers.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::ShapeMismatch`] for non-square matrices or a
    ///   wrong-length `b`,
    /// * [`CrossbarError::Linalg`] if the assembled realized system is
    ///   singular,
    /// * [`CrossbarError::NotProgrammed`] if any tile lost its state.
    pub fn solve(&mut self, b: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        if self.rows != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: "square logical matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("rhs of length {}", self.rows),
                found: format!("length {}", b.len()),
            });
        }
        // Assemble the realized system the composite network embodies
        // (cheap block copies; the LU below runs on the threaded kernels).
        let assembled = self.assembled_realized()?;
        let mut x = LuFactors::factor(assembled)?.solve(b)?;
        // Read-back through NoC buffers: bounded offset per line.
        let tile_count = self.tile_count();
        if self.noc.buffer_noise > 0.0 && tile_count > 1 {
            let scale = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for v in &mut x {
                *v += self.noise_rng.random_range(-1.0..=1.0) * self.noc.buffer_noise * scale;
            }
        }
        // Charge: one settle on every tile (they participate jointly) plus
        // the read-back transfers. Tile-level solve charging is applied via
        // each tile's ledger by issuing a zero-input... instead, charge the
        // fabric: one transfer per tile plus one solve-op recorded on the
        // ledger of the top-left tile as the representative array.
        let (t, e) = self.noc.transfer_cost(tile_count, self.rows);
        self.noc_ledger.charge_noc_transfer(
            t * tile_count as f64,
            e * tile_count as f64,
            tile_count as u64,
        );
        Ok(x)
    }

    /// Analog tiled solve via **block-Jacobi relaxation** — the
    /// architectural alternative to the composite settling of
    /// [`TiledCrossbar::solve`]: instead of assuming the inter-tile analog
    /// fabric lets the whole network settle as one system, each *diagonal*
    /// tile solves its own block in O(1) and the off-diagonal couplings are
    /// exchanged as tiled MVM partial sums over the NoC, iterating
    ///
    /// ```text
    /// x_i ← D_ii⁻¹ · (b_i − Σ_{j≠i} A_ij · x_j)
    /// ```
    ///
    /// until the update stops moving. Converges when the block-diagonal
    /// dominates (it charges per-sweep NoC + analog costs, so the ledger
    /// shows the latency price of not having composite settling).
    ///
    /// # Errors
    ///
    /// Shape errors as in [`TiledCrossbar::solve`];
    /// [`CrossbarError::Linalg`] with a `NotConverged` source if `sweeps`
    /// relaxations do not reach `tol` (relative to `‖b‖∞`).
    pub fn solve_block_jacobi(
        &mut self,
        b: &[f64],
        sweeps: usize,
        tol: f64,
    ) -> Result<Vec<f64>, CrossbarError> {
        if self.rows != self.cols {
            return Err(CrossbarError::ShapeMismatch {
                expected: "square logical matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("rhs of length {}", self.rows),
                found: format!("length {}", b.len()),
            });
        }
        let bnorm = b.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        let blocks = self.tiles.len();
        let tile_count = self.tile_count();
        let tile_side = self.tile_side;
        let cols = self.cols;
        let mut x = vec![0.0; self.rows];
        for sweep in 1..=sweeps {
            let mut max_delta = 0.0f64;
            for bi in 0..blocks {
                let r0 = bi * tile_side;
                let rows_here = tile_side.min(self.rows - r0);
                // Off-diagonal couplings via per-tile analog MVMs, fanned
                // out concurrently (each tile has a private RNG stream);
                // accumulation into the rhs stays in fixed bj order.
                let mut rhs: Vec<f64> = b[r0..r0 + rows_here].to_vec();
                let threads = Threads::resolve().for_flops(2 * rows_here * self.cols);
                let mut refs: Vec<(usize, &mut Crossbar)> = self.tiles[bi]
                    .iter_mut()
                    .enumerate()
                    .filter(|(bj, _)| *bj != bi)
                    .collect();
                let partials = parallel::par_map_mut(threads, &mut refs, |_, (bj, tile)| {
                    let c0 = *bj * tile_side;
                    let seg = &x[c0..(c0 + tile_side).min(cols)];
                    tile.mvm(seg)
                });
                for partial in partials {
                    let partial = partial?;
                    for (r, p) in rhs.iter_mut().zip(&partial) {
                        *r -= p;
                    }
                    let (t, e) = self.noc.transfer_cost(tile_count, partial.len());
                    self.noc_ledger.charge_noc_transfer(t, e, 1);
                }
                // Diagonal tile solves its block in O(1).
                let xi = self.tiles[bi][bi].solve(&rhs)?;
                for (k, v) in xi.iter().enumerate() {
                    max_delta = max_delta.max((v - x[r0 + k]).abs());
                    x[r0 + k] = *v;
                }
            }
            if max_delta <= tol * bnorm {
                return Ok(x);
            }
            let _ = sweep;
        }
        Err(CrossbarError::Linalg(
            memlp_linalg::LinalgError::NotConverged {
                iterations: sweeps,
                residual: f64::NAN,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_matrix(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let base = 0.2 + ((i * 31 + j * 17) % 13) as f64 * 0.05;
            if i == j {
                base + 5.0
            } else {
                base
            }
        })
    }

    #[test]
    fn tile_grid_covers_matrix() {
        let a = big_matrix(10);
        let t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::hierarchical())
            .unwrap();
        assert_eq!(t.tile_count(), 9); // ceil(10/4)² = 3²
        assert_eq!(t.shape(), (10, 10));
    }

    #[test]
    fn tiled_mvm_matches_monolithic_when_ideal() {
        let a = big_matrix(12);
        let cfg = CrossbarConfig::ideal();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 5, cfg, noc).unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let y = t.mvm(&x).unwrap();
        let exact = a.matvec(&x);
        for (got, want) in y.iter().zip(&exact) {
            assert!(
                (got - want).abs() < 2e-3 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn tiled_transposed_mvm_matches_monolithic_when_ideal() {
        // Rectangular so the row/column tile offsets genuinely swap.
        let a = Matrix::from_fn(12, 9, |i, j| 0.2 + ((i * 29 + j * 13) % 11) as f64 * 0.07);
        let cfg = CrossbarConfig::ideal();
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 5, cfg, noc).unwrap();
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.9).cos()).collect();
        let x = t.mvm_transposed(&y).unwrap();
        assert_eq!(x.len(), 9);
        let exact = a.matvec_transposed(&y);
        for (got, want) in x.iter().zip(&exact) {
            assert!(
                (got - want).abs() < 2e-3 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
        // Wrong input length (columns instead of rows) is rejected.
        assert!(t.mvm_transposed(&[1.0; 9]).is_err());
        // The transposed fan-in pays the same NoC traffic as the forward
        // product: one transfer per tile.
        assert_eq!(t.ledger().counts().noc_transfers, 6); // 3×2 tiles
    }

    #[test]
    fn tiled_solve_matches_exact_when_ideal() {
        let a = big_matrix(9);
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let b = vec![1.0; 9];
        let x = t.solve(&b).unwrap();
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 5e-2, "{got} vs {want}");
        }
    }

    #[test]
    fn buffer_noise_perturbs_but_is_bounded() {
        let a = big_matrix(8);
        let noc = NocConfig::hierarchical().with_buffer_noise(0.01);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let x = vec![1.0; 8];
        let y = t.mvm(&x).unwrap();
        let exact = a.matvec(&x);
        let mut any_diff = false;
        for (got, want) in y.iter().zip(&exact) {
            let rel = (got - want).abs() / want.abs().max(1.0);
            assert!(rel < 0.1, "noise too large: {rel}");
            if rel > 1e-6 {
                any_diff = true;
            }
        }
        assert!(any_diff, "1% buffer noise should be visible");
    }

    #[test]
    fn noc_transfers_are_charged() {
        let a = big_matrix(8);
        let mut t =
            TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), NocConfig::mesh()).unwrap();
        t.mvm(&[1.0; 8]).unwrap();
        let ledger = t.ledger();
        assert_eq!(ledger.counts().noc_transfers, 4); // 2×2 tiles
        assert!(
            ledger.counts().setup_writes > 0,
            "tile programming recorded"
        );
    }

    #[test]
    fn mesh_spends_more_noc_time_than_tree_at_scale() {
        let a = big_matrix(32);
        let run = |noc: NocConfig| {
            let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
            t.mvm(&vec![1.0; 32]).unwrap();
            t.ledger().run_time_s()
        };
        let tree = run(NocConfig::hierarchical().with_buffer_noise(0.0));
        let mesh = run(NocConfig::mesh().with_buffer_noise(0.0));
        assert!(mesh > tree, "mesh {mesh} vs tree {tree}");
    }

    #[test]
    fn rejects_zero_tile_side() {
        let a = big_matrix(4);
        assert!(matches!(
            TiledCrossbar::program(&a, 0, CrossbarConfig::ideal(), NocConfig::default()),
            Err(CrossbarError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_input_lengths() {
        let a = big_matrix(6);
        let mut t =
            TiledCrossbar::program(&a, 3, CrossbarConfig::ideal(), NocConfig::default()).unwrap();
        assert!(t.mvm(&[1.0; 5]).is_err());
        assert!(t.solve(&[1.0; 5]).is_err());
    }

    #[test]
    fn rectangular_solve_rejected() {
        let a = Matrix::from_fn(4, 6, |i, j| 1.0 + (i + j) as f64 * 0.1);
        let mut t =
            TiledCrossbar::program(&a, 3, CrossbarConfig::ideal(), NocConfig::default()).unwrap();
        assert!(t.solve(&[1.0; 4]).is_err());
        assert_eq!(t.mvm(&[1.0; 6]).unwrap().len(), 4);
    }

    #[test]
    fn block_jacobi_matches_composite_solve() {
        // Strongly block-diagonally dominant system: relaxation converges
        // and must land on the same solution as composite settling.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            let same_block = i / 4 == j / 4;
            if i == j {
                10.0
            } else if same_block {
                0.8
            } else {
                0.1 + ((i + j) % 3) as f64 * 0.05
            }
        });
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let b = vec![1.0; n];

        let mut t1 = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let x_composite = t1.solve(&b).unwrap();

        let mut t2 = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let x_jacobi = t2.solve_block_jacobi(&b, 200, 1e-6).unwrap();

        for (c, j) in x_composite.iter().zip(&x_jacobi) {
            assert!((c - j).abs() < 1e-2, "composite {c} vs jacobi {j}");
        }
        // The iterative scheme pays many more NoC transfers.
        assert!(
            t2.ledger().counts().noc_transfers > t1.ledger().counts().noc_transfers,
            "block-Jacobi should cost more fabric traffic"
        );
    }

    #[test]
    fn block_jacobi_reports_divergence() {
        // Off-diagonal-dominant system: relaxation cannot converge.
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 2.0 });
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, 4, CrossbarConfig::ideal(), noc).unwrap();
        let err = t.solve_block_jacobi(&vec![1.0; n], 30, 1e-9).unwrap_err();
        assert!(matches!(err, CrossbarError::Linalg(_)), "{err}");
    }

    #[test]
    fn variation_affects_tiles_independently() {
        let a = big_matrix(8);
        let cfg = CrossbarConfig::paper_default().with_variation(10.0);
        let mut t = TiledCrossbar::program(&a, 4, cfg, NocConfig::default()).unwrap();
        let y = t.mvm(&[1.0; 8]).unwrap();
        let exact = a.matvec(&[1.0; 8]);
        // Perturbed but sane.
        for (got, want) in y.iter().zip(&exact) {
            assert!((got - want).abs() / want.abs().max(1.0) < 0.2);
        }
    }
}
