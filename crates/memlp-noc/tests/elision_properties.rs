//! Property tests for zero-tile elision on the NoC-tiled crossbar.
//!
//! Two contracts from DESIGN.md §18, checked over *random* block-sparse
//! operands, tile shapes, and worker counts rather than hand-picked
//! fixtures:
//!
//! 1. **Elision is bitwise invisible.** On a fault-free fabric, `mvm` and
//!    `mvm_transposed` with elision on must produce bit-for-bit the same
//!    outputs as with elision off, at every thread count — a dead tile's
//!    contribution is an exact `±0.0`, the live tiles' private RNG
//!    streams are position-salted (not order-dependent), and the noise
//!    gating replays over the full grid geometry either way.
//! 2. **The occupancy index round-trips.** It is built from the planned
//!    coefficients at `program`, revived tiles become live on `refresh`
//!    (a real first program), and `remap_dead_lines` — which only ever
//!    touches live hardware — never changes it.

use memlp_crossbar::CrossbarConfig;
use memlp_linalg::parallel::with_threads;
use memlp_linalg::Matrix;
use memlp_noc::{NocConfig, TiledCrossbar};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 3] = [1, 2, 8];

/// Random live-block bitmap: each grid position is live with probability
/// ~0.5, so elided and populated tiles mix freely.
fn live_pattern(row_blocks: usize, col_blocks: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB10C);
    (0..row_blocks * col_blocks)
        .map(|_| rng.random_range(0.0..1.0) < 0.5)
        .collect()
}

/// Nonnegative block-sparse matrix realizing `pattern` at `tile_side`
/// (live blocks dense, dead blocks exactly zero). Edge tiles are clipped
/// by choosing dimensions that are not multiples of the tile side.
fn block_sparse(rows: usize, cols: usize, tile_side: usize, pattern: &[bool], seed: u64) -> Matrix {
    let col_blocks = cols.div_ceil(tile_side);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0EF);
    Matrix::from_fn(rows, cols, |i, j| {
        if pattern[(i / tile_side) * col_blocks + j / tile_side] {
            rng.random_range(0.05..3.0)
        } else {
            0.0
        }
    })
}

fn drive_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD41E);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A noisy (variation + buffer noise) array over `a`, identically seeded
/// on every call, with elision forced to `elide`.
fn tiled(a: &Matrix, tile_side: usize, seed: u64, elide: bool) -> TiledCrossbar {
    let cfg = CrossbarConfig::paper_default()
        .with_variation(10.0)
        .with_seed(seed)
        .with_tile_elision(elide);
    let noc = NocConfig::hierarchical().with_buffer_noise(1e-3);
    TiledCrossbar::program(a, tile_side, cfg, noc).expect("programmable matrix")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elision_is_bitwise_invisible_across_thread_counts(
        seed in 0u64..1_000,
        tile_side in 4usize..12,
        row_blocks in 1usize..4,
        col_blocks in 1usize..4,
        row_clip in 0usize..3,
        col_clip in 0usize..3,
    ) {
        let rows = (row_blocks * tile_side).saturating_sub(row_clip).max(1);
        let cols = (col_blocks * tile_side).saturating_sub(col_clip).max(1);
        let pattern = live_pattern(
            rows.div_ceil(tile_side),
            cols.div_ceil(tile_side),
            seed,
        );
        let a = block_sparse(rows, cols, tile_side, &pattern, seed);
        let x = drive_vector(cols, seed);
        let y = drive_vector(rows, seed.wrapping_add(1));

        let reference = with_threads(1, || {
            let mut t = tiled(&a, tile_side, seed, false);
            (t.mvm(&x).unwrap(), t.mvm_transposed(&y).unwrap())
        });
        for threads in THREADS {
            for elide in [true, false] {
                let (got_ax, got_aty, live, grid) = with_threads(threads, || {
                    let mut t = tiled(&a, tile_side, seed, elide);
                    (
                        t.mvm(&x).unwrap(),
                        t.mvm_transposed(&y).unwrap(),
                        t.tile_count(),
                        t.grid_tile_count(),
                    )
                });
                prop_assert_eq!(
                    bits(&got_ax),
                    bits(&reference.0),
                    "mvm differs (elide={}, {} threads)",
                    elide,
                    threads
                );
                prop_assert_eq!(
                    bits(&got_aty),
                    bits(&reference.1),
                    "mvm_transposed differs (elide={}, {} threads)",
                    elide,
                    threads
                );
                let live_blocks = pattern.iter().filter(|l| **l).count();
                if elide {
                    prop_assert_eq!(live, live_blocks, "elided fabric is live tiles only");
                } else {
                    prop_assert_eq!(live, grid, "elision off fabricates the full grid");
                }
            }
        }
    }

    #[test]
    fn occupancy_round_trips_through_program_refresh_remap(
        seed in 0u64..1_000,
        tile_side in 4usize..12,
        row_blocks in 1usize..4,
        col_blocks in 2usize..4,
    ) {
        let rows = row_blocks * tile_side;
        let cols = col_blocks * tile_side;
        let pattern = live_pattern(row_blocks, col_blocks, seed);
        let a = block_sparse(rows, cols, tile_side, &pattern, seed);
        let mut t = tiled(&a, tile_side, seed, true);

        // Program: the index mirrors the planned pattern exactly.
        for bi in 0..row_blocks {
            for bj in 0..col_blocks {
                prop_assert_eq!(
                    t.occupancy().is_live(bi, bj),
                    pattern[bi * col_blocks + bj],
                    "planned pattern lost at ({}, {})",
                    bi,
                    bj
                );
            }
        }
        let live_before = t.tile_count();
        prop_assert_eq!(live_before, pattern.iter().filter(|l| **l).count());

        // Refresh with one revived tile: it gains hardware (a real first
        // program), everything else keeps its liveness.
        if let Some(dead) = (0..pattern.len()).find(|i| !pattern[*i]) {
            let (di, dj) = (dead / col_blocks, dead % col_blocks);
            let mut revived = a.clone();
            revived[(di * tile_side, dj * tile_side)] = 1.0;
            t.refresh(&revived).unwrap();
            prop_assert!(t.occupancy().is_live(di, dj), "revived tile must be live");
            prop_assert_eq!(t.tile_count(), live_before + 1);

            // The revived index matches a fresh program of the new plan.
            let fresh = tiled(&revived, tile_side, seed, true);
            prop_assert_eq!(
                t.occupancy().fingerprint(),
                fresh.occupancy().fingerprint(),
                "refresh and fresh program disagree on occupancy"
            );
        }

        // Remap on a fault-free fabric: no dead lines, no index change.
        let occ_before = t.occupancy().clone();
        prop_assert_eq!(t.remap_dead_lines(), (0, 0, 0));
        prop_assert_eq!(t.occupancy(), &occ_before);
    }
}
