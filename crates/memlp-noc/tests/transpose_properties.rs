//! Property tests for the NoC-tiled transposed MVM — the entry point the
//! analog PDHG backend uses for `Aᵀy` without a second array program.
//!
//! The contract: the tiled analog `Aᵀy` must agree with a **digital CSR
//! transpose-multiply of the assembled realized matrix** to within the
//! converter quantization budget. The realized matrix (post
//! write-quantization, variation, and stuck faults) is the ground truth —
//! the analog array multiplies by what its cells actually store, so
//! variation and an active [`FaultModel`] plan shift *both* sides
//! identically and only the DAC/ADC grids separate them:
//!
//! * each tile's input segment is DAC-quantized against its own full
//!   scale (error ≤ `f_y / 2L_dac` per entry, amplified by the tile's
//!   column absolute sums), and
//! * each tile's partial output is ADC-quantized against its own full
//!   scale (error ≤ `f_p / 2L_adc` per entry, one contribution per row
//!   block).
//!
//! The bound below is assembled per output component from exactly those
//! two terms, so it is tight in the number of row blocks and never hides
//! a realized-value mismatch. A second property pins bitwise thread
//! invariance of the transposed fan-in, mirroring the forward-MVM
//! guarantee in `threaded.rs`.

use memlp_crossbar::{CrossbarConfig, FaultModel, Quantizer};
use memlp_linalg::parallel::with_threads;
use memlp_linalg::{Matrix, SparseMatrix};
use memlp_noc::{NocConfig, TiledCrossbar};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 3] = [1, 2, 8];

/// Nonnegative matrix (crossbar-programmable) with a sparsity mix.
fn coeff_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.random_range(0.0..1.0) < 0.3 {
            0.0
        } else {
            rng.random_range(0.05..3.0)
        }
    })
}

fn drive_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Per-component error budget separating the tiled analog `Aᵀy` from the
/// digital transpose-multiply of the realized matrix: one DAC term and
/// one ADC term per row block, assembled from the realized coefficients.
fn quantization_budget(
    realized: &Matrix,
    y: &[f64],
    tile_side: usize,
    cfg: &CrossbarConfig,
) -> Vec<f64> {
    let dac = Quantizer::new(cfg.dac_bits);
    let adc = Quantizer::new(cfg.adc_bits);
    let (rows, cols) = (realized.rows(), realized.cols());
    let row_blocks = rows.div_ceil(tile_side);
    let col_blocks = cols.div_ceil(tile_side);
    let mut budget = vec![1e-12; cols];
    for bi in 0..row_blocks {
        let r0 = bi * tile_side;
        let r1 = (r0 + tile_side).min(rows);
        // DAC full scale of this row block's input segment.
        let f_y = y[r0..r1].iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let dac_step = dac.max_error(f_y);
        for bj in 0..col_blocks {
            let c0 = bj * tile_side;
            let c1 = (c0 + tile_side).min(cols);
            // ADC full scale of this tile's partial output is bounded by
            // the largest column absolute sum times the input full scale.
            let mut partial_fs = 0.0f64;
            for c in c0..c1 {
                let col_abs: f64 = (r0..r1).map(|r| realized[(r, c)].abs()).sum();
                partial_fs = partial_fs.max(col_abs * f_y);
                budget[c] += col_abs * dac_step;
            }
            let adc_step = adc.max_error(partial_fs);
            for b in budget[c0..c1].iter_mut() {
                *b += adc_step;
            }
        }
    }
    budget
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled analog `Aᵀy` agrees with the digital CSR transpose-multiply
    /// of the assembled realized matrix within the DAC/ADC budget —
    /// with device variation and an active stuck-cell fault plan.
    #[test]
    fn tiled_transpose_matches_digital_csr_within_adc_bounds(
        (rows, cols, tile_side, seed) in (4usize..20, 4usize..20, 3usize..8, 0u64..500),
        stuck_on in 0.0f64..0.05,
        stuck_off in 0.0f64..0.05,
    ) {
        let a = coeff_matrix(rows, cols, seed);
        let y = drive_vector(rows, seed ^ 0x7a11);
        let cfg = CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_faults(FaultModel::new(stuck_on, stuck_off).expect("valid rates"))
            .with_seed(seed.wrapping_mul(0x9e37).wrapping_add(7));
        let noc = NocConfig::hierarchical().with_buffer_noise(0.0);
        let mut t = TiledCrossbar::program(&a, tile_side, cfg, noc).expect("programmable");

        let analog = t.mvm_transposed(&y).expect("transposed MVM");
        let realized = t.assembled_realized().expect("programmed");
        let digital = SparseMatrix::from_dense(&realized).matvec_transposed(&y);
        let budget = quantization_budget(&realized, &y, tile_side, &cfg);

        for (c, ((got, want), tol)) in analog.iter().zip(&digital).zip(&budget).enumerate() {
            prop_assert!(
                (got - want).abs() <= *tol,
                "component {c}: analog {got} vs digital {want}, budget {tol}"
            );
        }
    }

    /// The transposed fan-in is bitwise identical at every worker count,
    /// like the forward MVM: tiles own positional RNG streams and the
    /// NoC accumulation replays in fixed tile order.
    #[test]
    fn tiled_transpose_is_bitwise_thread_invariant(
        (rows, cols, tile_side, seed) in (4usize..20, 4usize..20, 3usize..8, 0u64..500),
    ) {
        let a = coeff_matrix(rows, cols, seed);
        let y = drive_vector(rows, seed ^ 0x0a11);
        let run = || {
            let cfg = CrossbarConfig::paper_default()
                .with_variation(10.0)
                .with_seed(99);
            let noc = NocConfig::hierarchical().with_buffer_noise(1e-3);
            let mut t = TiledCrossbar::program(&a, tile_side, cfg, noc).expect("programmable");
            t.mvm_transposed(&y).expect("transposed MVM")
        };
        let reference = with_threads(1, run);
        for threads in THREADS {
            let x = with_threads(threads, run);
            prop_assert_eq!(bits(&x), bits(&reference), "differs at {} threads", threads);
        }
    }
}
