//! Cross-thread-count determinism for the tiled-crossbar NoC fan-out.
//!
//! The per-tile MVMs run concurrently (phase 1), but each tile owns a
//! private RNG stream seeded from its `(row, col)` position, and the
//! partial sums are accumulated through the shared buffer-noise RNG and
//! fabric ledger in fixed tile order (phase 2). A freshly programmed array
//! must therefore produce **bit-for-bit** identical outputs — and an
//! identical cost ledger — at every worker count.
//!
//! These tests run under the `memlp-lint` regime like all other code:
//! the `concurrency::primitive` rule scans test files too, so any
//! threading primitive used here (rather than going through
//! `parallel::with_threads`) would be a deny finding. The pool's own
//! internals carry the workspace's only reasoned allows.

use memlp_crossbar::CrossbarConfig;
use memlp_linalg::parallel::with_threads;
use memlp_linalg::Matrix;
use memlp_noc::{NocConfig, TiledCrossbar};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 3] = [1, 2, 8];

/// Nonnegative, diagonally dominant matrix (crossbar-programmable, and
/// block-Jacobi converges on it).
fn dominant_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        let v: f64 = rng.random_range(0.05..1.0);
        if i == j {
            v + 2.0 * n as f64
        } else {
            v
        }
    })
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A noisy (variation + buffer noise) tiled array over `a`, identically
/// seeded on every call.
fn noisy_tiled(a: &Matrix, tile_side: usize) -> TiledCrossbar {
    let cfg = CrossbarConfig::paper_default()
        .with_variation(10.0)
        .with_seed(99);
    let noc = NocConfig::hierarchical().with_buffer_noise(1e-3);
    TiledCrossbar::program(a, tile_side, cfg, noc).expect("programmable matrix")
}

#[test]
fn tiled_mvm_is_bitwise_thread_invariant() {
    let a = dominant_matrix(30, 1);
    let x = random_vec(30, 2);
    let reference = with_threads(1, || {
        let mut t = noisy_tiled(&a, 8);
        (t.mvm(&x).unwrap(), t.ledger())
    });
    for threads in THREADS {
        let (y, ledger) = with_threads(threads, || {
            let mut t = noisy_tiled(&a, 8);
            (t.mvm(&x).unwrap(), t.ledger())
        });
        assert_eq!(
            bits(&y),
            bits(&reference.0),
            "mvm differs at {threads} threads"
        );
        assert_eq!(ledger, reference.1, "ledger differs at {threads} threads");
    }
}

#[test]
fn tiled_solve_is_bitwise_thread_invariant() {
    let a = dominant_matrix(27, 3);
    let b = random_vec(27, 4);
    let reference = with_threads(1, || noisy_tiled(&a, 7).solve(&b).unwrap());
    for threads in THREADS {
        let x = with_threads(threads, || noisy_tiled(&a, 7).solve(&b).unwrap());
        assert_eq!(
            bits(&x),
            bits(&reference),
            "solve differs at {threads} threads"
        );
    }
}

#[test]
fn tiled_block_jacobi_is_bitwise_thread_invariant() {
    let a = dominant_matrix(24, 5);
    let b = random_vec(24, 6);
    let solve = || {
        noisy_tiled(&a, 8)
            .solve_block_jacobi(&b, 200, 1e-9)
            .unwrap()
    };
    let reference = with_threads(1, solve);
    for threads in THREADS {
        let x = with_threads(threads, solve);
        assert_eq!(
            bits(&x),
            bits(&reference),
            "block-Jacobi differs at {threads} threads"
        );
    }
}

#[test]
fn repeated_mvms_replay_the_same_noise_stream_at_any_thread_count() {
    // Two MVMs on one array advance the tile and buffer RNG streams; the
    // full event sequence must still be scheduling-independent.
    let a = dominant_matrix(20, 7);
    let x1 = random_vec(20, 8);
    let x2 = random_vec(20, 9);
    let run = || {
        let mut t = noisy_tiled(&a, 6);
        let y1 = t.mvm(&x1).unwrap();
        let y2 = t.mvm(&x2).unwrap();
        (y1, y2)
    };
    let reference = with_threads(1, run);
    for threads in THREADS {
        let (y1, y2) = with_threads(threads, run);
        assert_eq!(
            bits(&y1),
            bits(&reference.0),
            "first mvm differs at {threads} threads"
        );
        assert_eq!(
            bits(&y2),
            bits(&reference.1),
            "second mvm differs at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_mvm_any_shape_is_bitwise_thread_invariant(
        (n, tile_side, seed) in (4usize..28, 3usize..9, 0u64..500),
    ) {
        let a = dominant_matrix(n, seed);
        let x = random_vec(n, seed ^ 0x0a11);
        let reference = with_threads(1, || noisy_tiled(&a, tile_side).mvm(&x).unwrap());
        for threads in THREADS {
            let y = with_threads(threads, || noisy_tiled(&a, tile_side).mvm(&x).unwrap());
            prop_assert_eq!(bits(&y), bits(&reference));
        }
    }
}
