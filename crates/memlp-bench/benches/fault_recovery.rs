//! Fault-recovery sweep: both PDIP solvers on defective arrays (1% stuck
//! cells split evenly on/off, plus a dead word-line rate sized to roughly
//! one dead row per block), with the escalation ladder on versus off.
//!
//! With recovery enabled every seed must come back `Optimal` inside the
//! paper's Fig 5 envelope (rel err ≤ 0.10); with recovery disabled the same
//! seeds fail or leave the envelope. The sweep mirrors the
//! `fault_recovery` acceptance test so CI archives the evidence as
//! `BENCH_fault_recovery.json` at the repository root (hand-rolled JSON —
//! no serde in the offline dependency set).

use memlp_core::{
    CrossbarPdipSolver, CrossbarSolution, CrossbarSolverOptions, LargeScaleOptions,
    LargeScaleSolver, RecoveryPolicy,
};
use memlp_crossbar::{CrossbarConfig, FaultModel};
use memlp_lp::generator::RandomLp;
use memlp_lp::{LpProblem, LpStatus};
use memlp_solvers::{LpSolver, NormalEqPdip};

/// Fig 5 envelope: the paper reports ≤ 9.9% relative objective error.
const ENVELOPE: f64 = 0.10;
const M: usize = 24;
const ALG1_SEEDS: [u64; 4] = [2, 4, 9, 12];
const ALG2_SEEDS: [u64; 3] = [2, 3, 7];

struct Row {
    alg: &'static str,
    seed: u64,
    policy: &'static str,
    status: LpStatus,
    rel_err: f64,
    fault_events: usize,
    escalations: usize,
    digital_fallback: bool,
    in_envelope: bool,
}

/// 1% total stuck cells plus ~one dead word line per array — the ISSUE's
/// acceptance operating point, identical to the `fault_recovery` test.
fn faulty_model() -> FaultModel {
    FaultModel::new(0.005, 0.005)
        .and_then(|m| m.with_dead_lines(0.04, 0.0))
        .expect("valid fault rates")
}

fn config(seed: u64) -> CrossbarConfig {
    CrossbarConfig::paper_default()
        .with_seed(seed)
        .with_faults(faulty_model())
}

fn solve(alg: &'static str, seed: u64, lp: &LpProblem, policy: RecoveryPolicy) -> CrossbarSolution {
    match alg {
        "alg1" => CrossbarPdipSolver::new(
            config(seed),
            CrossbarSolverOptions {
                recovery: policy,
                ..CrossbarSolverOptions::default()
            },
        )
        .solve(lp),
        _ => LargeScaleSolver::new(
            config(seed),
            LargeScaleOptions {
                recovery: policy,
                ..LargeScaleOptions::default()
            },
        )
        .solve(lp),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    println!("fault-recovery sweep: m = {M}, 1% stuck cells + ~1 dead line per array");
    println!();
    println!(
        "{:>5} {:>5} {:>9} {:>17} {:>10} {:>7} {:>6} {:>9}",
        "alg", "seed", "policy", "status", "rel err %", "events", "escal", "fallback"
    );

    let mut rows: Vec<Row> = Vec::new();
    let cases: Vec<(&'static str, u64)> = ALG1_SEEDS
        .iter()
        .map(|&s| ("alg1", s))
        .chain(ALG2_SEEDS.iter().map(|&s| ("alg2", s)))
        .collect();
    for &(alg, seed) in &cases {
        let lp = RandomLp::paper(M, 900 + seed).feasible();
        let reference = NormalEqPdip::default().solve(&lp);
        for (policy, name) in [
            (RecoveryPolicy::Full, "full"),
            (RecoveryPolicy::Disabled, "disabled"),
        ] {
            let r = solve(alg, seed, &lp, policy);
            let rel_err = (r.solution.objective - reference.objective).abs()
                / (1.0 + reference.objective.abs());
            let escalations = r.recovery.escalations();
            let row = Row {
                alg,
                seed,
                policy: name,
                status: r.solution.status,
                rel_err,
                fault_events: r.recovery.events.len() - escalations,
                escalations,
                digital_fallback: r.recovery.used_digital_fallback(),
                in_envelope: r.solution.status == LpStatus::Optimal && rel_err <= ENVELOPE,
            };
            println!(
                "{:>5} {:>5} {:>9} {:>17} {:>10.3} {:>7} {:>6} {:>9}",
                row.alg,
                row.seed,
                row.policy,
                format!("{:?}", row.status),
                row.rel_err * 100.0,
                row.fault_events,
                row.escalations,
                if row.digital_fallback { "yes" } else { "no" },
            );
            rows.push(row);
        }
    }

    let recovered = rows
        .iter()
        .filter(|r| r.policy == "full" && r.in_envelope)
        .count();
    let unrecovered_ok = rows
        .iter()
        .filter(|r| r.policy == "disabled" && r.in_envelope)
        .count();
    println!();
    println!(
        "recovery on : {recovered}/{} seeds Optimal within envelope",
        cases.len()
    );
    println!(
        "recovery off: {unrecovered_ok}/{} seeds Optimal within envelope",
        cases.len()
    );
    let gate_pass = recovered == cases.len() && unrecovered_ok == 0;

    // --- BENCH_fault_recovery.json at the repository root.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fault_recovery\",\n");
    json.push_str(&format!(
        "  \"suite\": \"RandomLp::paper(m={M}), 1% stuck cells + dead-line rate 0.04\",\n"
    ));
    json.push_str(&format!("  \"envelope_rel_err\": {ENVELOPE},\n"));
    json.push_str(&format!(
        "  \"note\": \"{}\",\n",
        json_escape(
            "each seed is solved twice on identical fault plans: recovery ladder on \
             (reprogram weak cells -> remap to spares -> variation redraw -> digital \
             fallback) then off; deterministic, so reruns reproduce these rows exactly"
        )
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // NaN (a failed solve has no finite objective) is not valid JSON.
        let rel_err = if r.rel_err.is_finite() {
            format!("{:.6}", r.rel_err)
        } else {
            String::from("null")
        };
        json.push_str(&format!(
            "    {{\"alg\": \"{}\", \"seed\": {}, \"policy\": \"{}\", \"status\": \"{:?}\", \
             \"rel_err\": {}, \"fault_events\": {}, \"escalations\": {}, \
             \"digital_fallback\": {}, \"in_envelope\": {}}}{}\n",
            r.alg,
            r.seed,
            r.policy,
            r.status,
            rel_err,
            r.fault_events,
            r.escalations,
            r.digital_fallback,
            r.in_envelope,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"recovered_in_envelope\": \"{recovered}/{}\",\n",
        cases.len()
    ));
    json.push_str(&format!(
        "  \"unrecovered_in_envelope\": \"{unrecovered_ok}/{}\",\n",
        cases.len()
    ));
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_fault_recovery.json");
    std::fs::write(&path, &json).expect("write BENCH_fault_recovery.json");
    println!("wrote {}", path.display());

    assert!(
        gate_pass,
        "fault-recovery gate failed: ladder on {recovered}/{} in envelope, \
         ladder off {unrecovered_ok} (must be 0)",
        cases.len()
    );
}
