//! **Figure 5(b)** — accuracy of the memristor crossbar-based linear
//! program solver **for large-scale operations** (Algorithm 2).
//!
//! Paper result: 0.8%–8.5% inaccuracy, decreasing with problem size; the
//! large-scale solver is coarser than Algorithm 1 but still reliable.

use memlp_bench::experiments::{feasible_grid, SolverKind};
use memlp_bench::{Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Fig 5(b): Algorithm 2 accuracy — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );
    let grid = feasible_grid(SolverKind::Alg2, &sweep);

    let mut t = Table::new(
        "Fig 5(b): relative error of Algorithm 2 (large-scale) vs reference",
        &[
            "m",
            "var %",
            "mean err %",
            "max err %",
            "success",
            "iterations",
        ],
    );
    for p in &grid {
        t.row(vec![
            p.m.to_string(),
            format!("{:.0}", p.var_pct),
            format!("{:.3}", p.rel_error.mean() * 100.0),
            format!("{:.3}", p.rel_error.max() * 100.0),
            format!("{:.0}%", p.success_rate * 100.0),
            format!("{:.1}", p.iterations.mean()),
        ]);
    }
    t.finish("fig5b_accuracy_large");

    let worst = grid
        .iter()
        .map(|p| p.rel_error.max())
        .fold(0.0f64, f64::max);
    println!(
        "\nworst-case error anywhere on the grid: {:.2}% (paper: ≤ ~8.5%)",
        worst * 100.0
    );
}
