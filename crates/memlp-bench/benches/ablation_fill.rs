//! **Ablation A2** — the RU/RL fill magnitude of Algorithm 2 (§3.4). The
//! paper only says the fill values are "very small"; this ablation sweeps
//! the magnitude and shows the working range: too small amplifies the
//! weakly determined dual directions, too large corrupts the step quality.

use memlp_bench::{run_trials, Stats, Table};
use memlp_core::{LargeScaleOptions, LargeScaleSolver};
use memlp_crossbar::CrossbarConfig;
use memlp_lp::generator::RandomLp;
use memlp_solvers::{LpSolver, NormalEqPdip};

fn main() {
    let m = 64;
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Ablation: Algorithm 2 fill scale at m = {m}, 10% variation, {trials} trials");

    let mut t = Table::new(
        "Algorithm 2 vs RU/RL fill magnitude (relative to mean |A|)",
        &["fill", "mean err %", "max err %", "mean iters", "success"],
    );
    for fill in [0.005, 0.02, 0.05, 0.1, 0.3, 1.0] {
        let outcomes = run_trials(trials, |trial| {
            let seed = 5000 + trial as u64;
            let lp = RandomLp::paper(m, seed).feasible();
            let reference = NormalEqPdip::default().solve(&lp);
            let opts = LargeScaleOptions {
                fill_scale: fill,
                ..LargeScaleOptions::default()
            };
            let r = LargeScaleSolver::new(
                CrossbarConfig::paper_default()
                    .with_variation(10.0)
                    .with_seed(seed),
                opts,
            )
            .solve(&lp);
            if r.solution.status.is_optimal() {
                Some((
                    (r.solution.objective - reference.objective).abs()
                        / (1.0 + reference.objective.abs()),
                    r.solution.iterations as f64,
                ))
            } else {
                None
            }
        });
        let ok = outcomes.iter().filter(|o| o.is_some()).count();
        let errs: Stats = outcomes.iter().flatten().map(|(e, _)| *e).collect();
        let iters: Stats = outcomes.iter().flatten().map(|(_, i)| *i).collect();
        t.row(vec![
            format!("{fill}"),
            format!("{:.3}", errs.mean() * 100.0),
            format!("{:.3}", errs.max() * 100.0),
            format!("{:.1}", iters.mean()),
            format!("{ok}/{trials}"),
        ]);
    }
    t.finish("ablation_fill");
}
