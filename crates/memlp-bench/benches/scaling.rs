//! Parallel-scaling study: batched Algorithm-1 solves across a grid of
//! thread budgets × batch sizes, on a fixed LP suite.
//!
//! Both parallelism knobs are pinned per cell: the kernel pool via
//! `parallel::with_threads` and the batch fan-out via `solve_batch`'s
//! `jobs` argument. Because every kernel is thread-count invariant
//! (DESIGN.md §8), each cell performs the *identical* computation — the
//! grid measures pure scheduling efficiency.
//!
//! Emits `BENCH_parallel.json` at the repository root (hand-rolled JSON —
//! no serde in the offline dependency set) alongside the usual stdout
//! table. The host's `available_parallelism` is recorded so speedups can
//! be judged against the cores actually present.

use std::time::Instant;

use memlp_bench::fmt_time;
use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_linalg::parallel::with_threads;
use memlp_lp::generator::RandomLp;
use memlp_lp::LpProblem;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BATCHES: [usize; 3] = [1, 8, 64];
/// Constraint count of every suite problem (n = m/3, per §4.2).
const M: usize = 48;
const REPS: usize = 3;

struct Cell {
    threads: usize,
    batch: usize,
    /// Median wall-clock for the whole batch, seconds.
    secs: f64,
    /// Problems solved per second at this cell.
    throughput: f64,
    /// Thread budget exceeds the host's `available_parallelism`: the cell
    /// measures scheduler churn, not parallel speedup, and is excluded
    /// from the headline numbers.
    oversubscribed: bool,
}

/// Fixed suite: `count` distinct feasible LPs with deterministic seeds.
fn suite(count: usize) -> Vec<LpProblem> {
    (0..count)
        .map(|i| RandomLp::paper(M, 1000 + i as u64).feasible())
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let solver = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default().with_variation(10.0),
        CrossbarSolverOptions::default(),
    );
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("parallel scaling: Algorithm 1, m = {M}, suite of distinct LPs");
    println!("host available_parallelism = {available}");
    if THREADS.iter().any(|&t| t > available) {
        println!(
            "cells marked * request more threads than the host has; they are \
             kept for completeness but excluded from the headline speedup"
        );
    }
    println!();
    println!(
        "{:>8} {:>6} {:>12} {:>14} {:>9}",
        "threads", "batch", "batch time", "solves/s", "speedup"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &batch in &BATCHES {
        let lps = suite(batch);
        let mut base = f64::NAN;
        for &threads in &THREADS {
            let secs = median(
                (0..REPS)
                    .map(|_| {
                        let t = Instant::now();
                        let results = with_threads(threads, || solver.solve_batch(&lps, threads));
                        assert!(
                            results
                                .iter()
                                .all(|r| r.as_ref().is_ok_and(|r| r.solution.status.is_optimal())),
                            "suite problem failed to solve"
                        );
                        t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            if threads == 1 {
                base = secs;
            }
            let oversubscribed = threads > available;
            println!(
                "{threads:>8} {batch:>6} {:>12} {:>14.2} {:>8.2}x{}",
                fmt_time(secs),
                batch as f64 / secs,
                base / secs,
                if oversubscribed { " *" } else { "" },
            );
            cells.push(Cell {
                threads,
                batch,
                secs,
                throughput: batch as f64 / secs,
                oversubscribed,
            });
        }
        println!();
    }

    // --- BENCH_parallel.json at the repository root.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"scaling\",\n");
    json.push_str(&format!(
        "  \"suite\": \"RandomLp::paper(m={M}), Algorithm 1, 10% variation\",\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {available},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!(
        "  \"note\": \"{}\",\n",
        json_escape(
            "oversubscribed cells (threads > available_parallelism) measure \
             scheduler churn, not parallel speedup, and are excluded from the \
             honest headline numbers; results stay deterministic across all cells"
        )
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"batch\": {}, \"seconds\": {:.6}, \
             \"solves_per_sec\": {:.3}, \"oversubscribed\": {}}}{}\n",
            c.threads,
            c.batch,
            c.secs,
            c.throughput,
            c.oversubscribed,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Headline speedup is judged on honest cells only: the largest thread
    // budget the host can actually schedule, at the largest batch.
    let honest_threads = THREADS
        .iter()
        .copied()
        .filter(|&t| t <= available)
        .max()
        .unwrap_or(1);
    let speedup_at = |threads: usize, batch: usize| {
        let t1 = cells
            .iter()
            .find(|c| c.threads == 1 && c.batch == batch)
            .unwrap()
            .secs;
        let tn = cells
            .iter()
            .find(|c| c.threads == threads && c.batch == batch)
            .unwrap()
            .secs;
        t1 / tn
    };
    let honest = speedup_at(honest_threads, 64);
    // On a single-core host the honest grid collapses to threads = 1 and
    // the only defensible claim is "no regression"; multi-core hosts must
    // not lose throughput by going parallel.
    let gate_pass = honest > 0.85;
    json.push_str(&format!(
        "  \"honest_threads\": {honest_threads},\n  \
         \"speedup_honest_batch_64\": {:.3},\n",
        honest
    ));
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_parallel.json");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!("wrote {}", path.display());

    assert!(
        gate_pass,
        "honest speedup {honest:.3} at {honest_threads} thread(s) regressed"
    );
}
