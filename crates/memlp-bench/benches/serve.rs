//! Serving-path robustness bench: an in-process `memlp-serve` daemon
//! driven through real loopback sockets, covering the four scenarios the
//! service contract gates on —
//!
//! 1. **warm vs cold** — repeat solves of one family must hit the pooled
//!    context (delta-cache skips, warm-started PDIP) and beat the cold
//!    p50;
//! 2. **deadline-exceeded** — an exhausted iteration-tick budget returns
//!    the best iterate, marked degraded, instead of hanging or erroring;
//! 3. **overload burst** — a burst above queue depth 4 sheds with
//!    structured retry hints and never hangs or drops a request;
//! 4. **drain** — in-flight work completes before shutdown.
//!
//! Plus a closed-loop concurrency sweep (1/8/64 clients) where every
//! request must be accounted for: ok + degraded + shed == sent, zero
//! transport errors. Evidence lands in `BENCH_serve.json` at the
//! repository root (hand-rolled JSON — no serde in the offline set) with
//! a single `"gate_pass"` verdict for CI to grep.

use memlp_crossbar::CrossbarConfig;
use memlp_lp::generator::RandomLp;
use memlp_lp::LpStatus;
use memlp_serve::codec::{Response, SolutionBody, SolveJob};
use memlp_serve::{LoadConfig, LoadReport, ServeClient, ServeConfig, Server};

fn job(family: &str, m: usize, seed: u64, max_iters: u32, deadline_ticks: u32) -> SolveJob {
    let lp = RandomLp::paper(m, seed).feasible();
    SolveJob {
        family: family.to_string(),
        rows: lp.num_constraints() as u32,
        cols: lp.num_vars() as u32,
        a: lp.a().as_slice().to_vec(),
        b: lp.b().to_vec(),
        c: lp.c().to_vec(),
        max_iters,
        deadline_ticks,
    }
}

fn config() -> ServeConfig {
    ServeConfig::default().with_crossbar(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(41),
    )
}

fn solution(resp: Response) -> SolutionBody {
    match resp {
        Response::Solution(s) => s,
        other => panic!("expected a solution, got {other:?}"),
    }
}

/// Scenario 1+2: one server, one client — cold/warm contrast, then a
/// deadline expiry on the warm context. Single worker + sequential
/// requests, so these numbers replay bitwise (latency aside).
fn warm_cold_and_deadline() -> (SolutionBody, Vec<SolutionBody>, SolutionBody) {
    let server = Server::bind("127.0.0.1:0", config()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    let cold = solution(client.solve(job("steady", 32, 7, 0, 0)).expect("cold"));
    assert_eq!(cold.status, LpStatus::Optimal, "cold solve must converge");
    assert!(!cold.warm_start);

    let warm: Vec<SolutionBody> = (0..5)
        .map(|i| {
            let s = solution(client.solve(job("steady", 32, 7, 0, 0)).expect("warm"));
            assert_eq!(s.status, LpStatus::Optimal, "warm repeat {i}");
            assert!(s.warm_start, "repeat {i} must start from the pool");
            s
        })
        .collect();

    let degraded = solution(client.solve(job("steady", 32, 7, 0, 3)).expect("deadline"));
    assert!(
        degraded.degraded.is_some(),
        "a 3-tick deadline on a 30+-iteration problem must expire"
    );
    assert!(
        degraded.objective.is_finite() && degraded.x.iter().all(|v| v.is_finite()),
        "degraded responses carry the best iterate, not garbage"
    );

    drop(client);
    server.shutdown();
    (cold, warm, degraded)
}

/// Scenario 3: burst of 12 one-shot clients against queue depth 4 and a
/// single worker chewing a slow cold solve. No retries: every request
/// resolves to exactly one of ok/shed.
fn overload_burst() -> LoadReport {
    let server =
        Server::bind("127.0.0.1:0", config().with_queue_depth(4).with_workers(1)).expect("bind");
    let addr = server.addr().to_string();
    let report = memlp_serve::run_load(
        &LoadConfig {
            addr,
            concurrency: 12,
            requests_per_client: 1,
            max_overload_retries: 0,
        },
        |client_idx, _| {
            job(
                &format!("burst-{client_idx}"),
                48,
                900 + client_idx as u64,
                0,
                0,
            )
        },
    );
    server.shutdown();
    report
}

/// Closed-loop sweep: every client hammers its own family so later
/// requests ride the pool. Accounting must balance at every concurrency.
fn sweep_point(concurrency: usize) -> LoadReport {
    let server =
        Server::bind("127.0.0.1:0", config().with_queue_depth(64).with_workers(2)).expect("bind");
    let addr = server.addr().to_string();
    let report = memlp_serve::run_load(
        &LoadConfig {
            addr,
            concurrency,
            requests_per_client: 3,
            max_overload_retries: 3,
        },
        |client_idx, _| {
            let fam = client_idx % 4;
            job(&format!("sweep-{fam}"), 16, 100 + fam as u64, 0, 0)
        },
    );
    server.shutdown();
    report
}

/// Scenario 4: two posted-but-unread jobs, then a drain. The ack arrives
/// only after both complete, and both replies are real solutions.
fn drain_completes() -> (u64, usize) {
    let server = Server::bind("127.0.0.1:0", config()).expect("bind");
    let addr = server.addr().to_string();

    let mut a = ServeClient::connect(&addr).expect("connect a");
    let mut b = ServeClient::connect(&addr).expect("connect b");
    a.send(&memlp_serve::codec::Request::Solve(job(
        "drain", 16, 5, 0, 0,
    )))
    .expect("post a");
    b.send(&memlp_serve::codec::Request::Solve(job(
        "drain", 16, 6, 0, 0,
    )))
    .expect("post b");

    let mut ctl = ServeClient::connect(&addr).expect("connect ctl");
    let completed = ctl.drain().expect("drain ack");

    let mut finished = 0usize;
    for client in [&mut a, &mut b] {
        let s = solution(client.recv().expect("reply after drain"));
        assert_eq!(s.status, LpStatus::Optimal, "in-flight work must finish");
        finished += 1;
    }
    server.wait();
    (completed, finished)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    if v.is_empty() {
        0
    } else {
        v[v.len() / 2]
    }
}

fn main() {
    println!("serve bench: in-process daemon, loopback sockets");
    println!();

    // --- warm vs cold + deadline.
    let (cold, warm, degraded) = warm_cold_and_deadline();
    let warm_p50 = median(warm.iter().map(|s| s.latency_us).collect());
    let warm_skipped: u64 = warm.iter().map(|s| s.cells_skipped).sum();
    let warm_hits = warm.iter().filter(|s| s.warm_start).count();
    println!(
        "warm/cold   : cold {} us / {} iters -> warm p50 {} us / {} iters, {} skipped writes",
        cold.latency_us, cold.iterations, warm_p50, warm[0].iterations, warm_skipped
    );
    println!(
        "deadline    : {} after {} iters, objective {:.6}",
        degraded
            .degraded
            .map(|c| c.to_string())
            .unwrap_or_else(|| "missing".into()),
        degraded.iterations,
        degraded.objective
    );

    // --- overload burst at queue depth 4.
    let burst = overload_burst();
    println!(
        "burst       : {} sent -> {} ok, {} shed (queue depth 4), {} errors",
        burst.sent, burst.ok, burst.shed, burst.errors
    );

    // --- concurrency sweep.
    let sweep: Vec<(usize, LoadReport)> = [1usize, 8, 64]
        .iter()
        .map(|&c| (c, sweep_point(c)))
        .collect();
    for (c, r) in &sweep {
        println!(
            "sweep c={c:<3}: {} sent, {} ok, {} shed, p50 {} us, p99 {} us, {:.1} solves/s, {} warm hits",
            r.sent, r.ok, r.shed, r.p50_us, r.p99_us, r.solves_per_sec, r.warm_hits
        );
    }

    // --- drain.
    let (drain_ack, drain_finished) = drain_completes();
    println!("drain       : ack after {drain_ack} completed, {drain_finished}/2 replies delivered");

    // --- gates.
    let gate_warm_faster = warm_p50 < cold.latency_us;
    let gate_skipped = warm_skipped > 0 && warm_hits == warm.len();
    let gate_degraded = degraded.degraded.is_some();
    let gate_burst = burst.errors == 0
        && burst.shed >= 1
        && burst.ok >= 1
        && burst.ok + burst.shed == burst.sent;
    let gate_sweep = sweep
        .iter()
        .all(|(_, r)| r.errors == 0 && r.ok + r.degraded + r.shed == r.sent);
    let gate_drain = drain_finished == 2 && drain_ack >= 2;
    let gate_pass =
        gate_warm_faster && gate_skipped && gate_degraded && gate_burst && gate_sweep && gate_drain;

    println!();
    println!("gates: warm_faster={gate_warm_faster} delta_skips={gate_skipped} degraded={gate_degraded} burst={gate_burst} sweep={gate_sweep} drain={gate_drain}");

    // --- BENCH_serve.json at the repository root.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str(
        "  \"suite\": \"in-process daemon on loopback, RandomLp::paper families, variation 5%\",\n",
    );
    json.push_str(&format!(
        "  \"warm_cold\": {{\"cold_us\": {}, \"cold_iters\": {}, \"warm_p50_us\": {}, \
         \"warm_iters\": {}, \"warm_cells_skipped\": {}, \"warm_hits\": \"{}/{}\"}},\n",
        cold.latency_us,
        cold.iterations,
        warm_p50,
        warm[0].iterations,
        warm_skipped,
        warm_hits,
        warm.len()
    ));
    json.push_str(&format!(
        "  \"deadline\": {{\"cause\": \"{}\", \"iterations\": {}, \"finite_iterate\": {}}},\n",
        degraded
            .degraded
            .map(|c| c.to_string())
            .unwrap_or_else(|| "missing".into()),
        degraded.iterations,
        degraded.x.iter().all(|v| v.is_finite())
    ));
    json.push_str(&format!(
        "  \"burst\": {{\"queue_depth\": 4, \"sent\": {}, \"ok\": {}, \"shed\": {}, \
         \"overload_replies\": {}, \"errors\": {}}},\n",
        burst.sent, burst.ok, burst.shed, burst.overload_replies, burst.errors
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, (c, r)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"sent\": {}, \"ok\": {}, \"degraded\": {}, \
             \"shed\": {}, \"errors\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"solves_per_sec\": {:.1}, \"warm_hits\": {}}}{}\n",
            c,
            r.sent,
            r.ok,
            r.degraded,
            r.shed,
            r.errors,
            r.p50_us,
            r.p99_us,
            r.solves_per_sec,
            r.warm_hits,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"drain\": {{\"posted\": 2, \"replies_delivered\": {drain_finished}, \
         \"ack_completed\": {drain_ack}}},\n"
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"warm_p50_below_cold\": {gate_warm_faster}, \
         \"nonzero_skipped_writes\": {gate_skipped}, \"deadline_degrades\": {gate_degraded}, \
         \"burst_sheds_never_drops\": {gate_burst}, \"sweep_accounting_balances\": {gate_sweep}, \
         \"drain_completes_inflight\": {gate_drain}}},\n"
    ));
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    assert!(gate_pass, "serve robustness gates failed");
}
