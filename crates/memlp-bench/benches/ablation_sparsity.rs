//! **Ablation A7** — workload sparsity (§3.5). The paper notes the O(N²)
//! crossbar initialization "will be lower for sparse matrices that are
//! common in linear programs": erased cells need no write pulses, so setup
//! cost is proportional to nnz. This ablation sweeps constraint-matrix
//! density and reports setup vs run cost and accuracy.

use memlp_bench::{fmt_time, run_trials, Stats, Table};
use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_linalg::SparseMatrix;
use memlp_lp::generator::RandomLp;
use memlp_solvers::{LpSolver, NormalEqPdip};

fn main() {
    let m = 96;
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Ablation: constraint-matrix density at m = {m}, 5% variation, {trials} trials");

    let mut t = Table::new(
        "Setup cost is nnz-proportional; run cost and accuracy are density-independent",
        &[
            "density",
            "nnz(A)",
            "setup writes",
            "setup time",
            "run time",
            "mean err %",
            "success",
        ],
    );
    for density in [1.0, 0.5, 0.25, 0.1] {
        let outcomes = run_trials(trials, |trial| {
            let seed = 10_000 + trial as u64;
            let gen = RandomLp {
                density,
                ..RandomLp::paper(m, seed)
            };
            let lp = gen.feasible();
            let nnz = SparseMatrix::from_dense(lp.a()).nnz();
            let reference = NormalEqPdip::default().solve(&lp);
            let r = CrossbarPdipSolver::new(
                CrossbarConfig::paper_default()
                    .with_variation(5.0)
                    .with_seed(seed),
                CrossbarSolverOptions::default(),
            )
            .solve(&lp);
            let err = if r.solution.status.is_optimal() && reference.status.is_optimal() {
                (r.solution.objective - reference.objective).abs()
                    / (1.0 + reference.objective.abs())
            } else {
                f64::NAN
            };
            (
                nnz as f64,
                r.ledger.counts().setup_writes as f64,
                r.ledger.setup_time_s(),
                r.ledger.run_time_s(),
                err,
                r.solution.status.is_optimal(),
            )
        });
        let ok = outcomes.iter().filter(|o| o.5).count();
        let nnz: Stats = outcomes.iter().map(|o| o.0).collect();
        let writes: Stats = outcomes.iter().map(|o| o.1).collect();
        let setup: Stats = outcomes.iter().map(|o| o.2).collect();
        let run: Stats = outcomes.iter().map(|o| o.3).collect();
        let errs: Stats = outcomes.iter().map(|o| o.4).collect();
        t.row(vec![
            format!("{density}"),
            format!("{:.0}", nnz.mean()),
            format!("{:.0}", writes.mean()),
            fmt_time(setup.mean()),
            fmt_time(run.mean()),
            format!("{:.3}", errs.mean() * 100.0),
            format!("{ok}/{trials}"),
        ]);
    }
    t.finish("ablation_sparsity");
    println!("\nExpected shape: setup writes/time fall roughly linearly with density;");
    println!("per-iteration run cost (diagonal rewrites) is density-independent.");
}
