//! **Figure 6(a)** — estimated computation latency of the crossbar solver
//! (Algorithm 1) compared with the `linprog` stand-in and the dense
//! software PDIP baseline.
//!
//! Hardware latency is *estimated* exactly as in the paper: simulated
//! iteration counts × per-iteration hardware activity (2(n+m) coefficient
//! updates, one analog MVM + one analog solve, conversions), costed with
//! the `CostParams` constants. Software latency is *measured wall-clock*
//! of our Rust baselines (faster than the paper's Matlab, so the speedups
//! reported here are conservative). Paper result at m = 1024: 78–239 ms for
//! the crossbar (by variation) vs 6.23 s for `linprog` (≥ 26×).

use memlp_bench::experiments::{feasible_grid, software_latency, SolverKind};
use memlp_bench::{fmt_time, Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Fig 6(a): Algorithm 1 estimated latency — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );
    let grid = feasible_grid(SolverKind::Alg1, &sweep);

    // Software baselines per size (dense PDIP capped: O(N³)/iteration).
    let mut t = Table::new(
        "Fig 6(a): estimated latency, Algorithm 1 vs software",
        &[
            "m",
            "var %",
            "crossbar (est)",
            "linprog-sub (wall)",
            "dense PDIP (wall)",
            "speedup",
        ],
    );
    for &m in &sweep.sizes {
        let (normal, dense) = software_latency(m, sweep.trials.min(3), 256);
        for p in grid.iter().filter(|p| p.m == m) {
            let speedup = normal.mean() / p.hw_run_s.mean();
            t.row(vec![
                m.to_string(),
                format!("{:.0}", p.var_pct),
                fmt_time(p.hw_run_s.mean()),
                fmt_time(normal.mean()),
                fmt_time(dense.mean()),
                format!("{:.1}x", speedup),
            ]);
        }
    }
    t.finish("fig6a_latency");

    println!("\nShape checks (paper’s qualitative claims):");
    for &m in &sweep.sizes {
        let at = |v: f64| {
            grid.iter()
                .find(|p| p.m == m && p.var_pct == v)
                .map(|p| p.hw_run_s.mean())
                .unwrap_or(f64::NAN)
        };
        println!(
            "  m={m:>5}: latency var0={} var20={} (paper: grows with variation)",
            fmt_time(at(0.0)),
            fmt_time(at(20.0))
        );
    }
}
