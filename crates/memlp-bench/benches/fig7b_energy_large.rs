//! **Figure 7(b)** — estimated energy consumption of the large-scale
//! solver (Algorithm 2) vs the CPU baseline.
//!
//! Paper result: the large-scale solver's energy advantage is the largest
//! of all configurations (average ~273× vs `linprog` at m = 1024).

use memlp_bench::experiments::{feasible_grid, software_latency, SolverKind};
use memlp_bench::{cpu_energy_j, fmt_energy, Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Fig 7(b): Algorithm 2 estimated energy — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );
    let grid = feasible_grid(SolverKind::Alg2, &sweep);

    let mut t = Table::new(
        "Fig 7(b): estimated energy, Algorithm 2 (large-scale) vs software (35 W CPU model)",
        &["m", "var %", "crossbar (est)", "linprog-sub (cpu)", "ratio"],
    );
    for &m in &sweep.sizes {
        let (normal, _) = software_latency(m, sweep.trials.min(3), 0);
        let cpu = cpu_energy_j(normal.mean());
        for p in grid.iter().filter(|p| p.m == m) {
            t.row(vec![
                m.to_string(),
                format!("{:.0}", p.var_pct),
                fmt_energy(p.hw_energy_j.mean()),
                fmt_energy(cpu),
                format!("{:.1}x", cpu / p.hw_energy_j.mean()),
            ]);
        }
    }
    t.finish("fig7b_energy_large");
}
