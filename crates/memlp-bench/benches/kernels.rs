//! Criterion microbenchmarks for the workspace's hot kernels: the dense LU
//! (the simulator's cost and the software baseline's inner loop), the
//! crossbar analog ops, the §3.2 transform, and workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use memlp_core::SignSplit;
use memlp_crossbar::{Crossbar, CrossbarConfig};
use memlp_linalg::{LuFactors, Matrix};
use memlp_lp::generator::RandomLp;

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = (((i * 7919 + j * 104729) % 1000) as f64) / 1000.0 - 0.5;
        v + if i == j { 8.0 } else { 0.0 }
    })
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_factor");
    for &n in &[64usize, 256, 512] {
        let a = test_matrix(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| LuFactors::factor(a.clone()).expect("non-singular"))
        });
    }
    g.finish();
}

fn bench_crossbar_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossbar");
    for &n in &[64usize, 256] {
        let a = test_matrix(n).map(f64::abs);
        let mut xb = Crossbar::new(n, CrossbarConfig::paper_default().with_variation(10.0))
            .expect("fits");
        xb.program(&a).expect("non-negative");
        let x = vec![0.5; n];
        g.bench_with_input(BenchmarkId::new("mvm", n), &x, |b, x| b.iter(|| xb.mvm(x).unwrap()));
        let bvec = vec![1.0; n];
        g.bench_with_input(BenchmarkId::new("solve", n), &bvec, |b, bv| {
            b.iter(|| xb.solve(bv).unwrap())
        });
    }
    g.finish();
}

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("sign_split");
    for &m in &[64usize, 256] {
        let lp = RandomLp::paper(m, 1).feasible();
        g.bench_with_input(BenchmarkId::from_parameter(m), lp.a(), |b, a| {
            b.iter(|| SignSplit::split(a))
        });
    }
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    for &m in &[64usize, 256] {
        g.bench_with_input(BenchmarkId::new("feasible", m), &m, |b, &m| {
            b.iter(|| RandomLp::paper(m, 7).feasible())
        });
    }
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_lu, bench_crossbar_ops, bench_transform, bench_generator
}
criterion_main!(kernels);
