//! Microbenchmarks for the workspace's hot kernels: the dense LU (the
//! simulator's cost and the software baseline's inner loop), the crossbar
//! analog ops, the §3.2 transform, and workload generation.
//!
//! A plain timing harness (median of repeated runs) rather than criterion:
//! the build environment has no registry access, so the bench crates carry
//! no external harness dependency.

use std::hint::black_box;
use std::time::Instant;

use memlp_bench::{fmt_time, Stats};
use memlp_core::SignSplit;
use memlp_crossbar::{Crossbar, CrossbarConfig};
use memlp_linalg::{LuFactors, Matrix};
use memlp_lp::generator::RandomLp;

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = (((i * 7919 + j * 104729) % 1000) as f64) / 1000.0 - 0.5;
        v + if i == j { 8.0 } else { 0.0 }
    })
}

/// Times `f` over enough repetitions to be stable and reports the median.
fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    // Calibrate: aim for ~100 ms of total work, between 3 and 30 reps.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.1 / once) as usize).clamp(3, 30);
    let s: Stats = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    println!(
        "{label:<28} mean {:>10}  (min {:>10}, max {:>10}, n={reps})",
        fmt_time(s.mean()),
        fmt_time(s.min()),
        fmt_time(s.max()),
    );
}

fn bench_lu() {
    for &n in &[64usize, 256, 512] {
        let a = test_matrix(n);
        bench(&format!("lu_factor/{n}"), || {
            LuFactors::factor(a.clone()).expect("non-singular")
        });
    }
}

fn bench_crossbar_ops() {
    for &n in &[64usize, 256] {
        let a = test_matrix(n).map(f64::abs);
        let mut xb =
            Crossbar::new(n, CrossbarConfig::paper_default().with_variation(10.0)).expect("fits");
        xb.program(&a).expect("non-negative");
        let x = vec![0.5; n];
        bench(&format!("crossbar/mvm/{n}"), || xb.mvm(&x).unwrap());
        let bvec = vec![1.0; n];
        bench(&format!("crossbar/solve/{n}"), || xb.solve(&bvec).unwrap());
    }
}

fn bench_transform() {
    for &m in &[64usize, 256] {
        let lp = RandomLp::paper(m, 1).feasible();
        bench(&format!("sign_split/{m}"), || SignSplit::split(lp.a()));
    }
}

fn bench_generator() {
    for &m in &[64usize, 256] {
        bench(&format!("generator/feasible/{m}"), || {
            RandomLp::paper(m, 7).feasible()
        });
    }
}

fn main() {
    bench_lu();
    bench_crossbar_ops();
    bench_transform();
    bench_generator();
}
