//! Block-sparse analog execution study (DESIGN.md §18).
//!
//! Zero-tile elision on the analog PDHG backend: the sign-split planes of
//! every memlp-lp domain are block-sparse at the 128-cell analog tile
//! side (an assignment constraint matrix is 0/1 with two ones per column,
//! so half its positive-plane tiles — and the *entire* negative plane —
//! are planned dead). With `CrossbarConfig::tile_elision` the dead tiles
//! are never fabricated: no programming sweep, no fault plan, no fabric
//! traffic. This bench measures what that buys and proves it costs
//! nothing in results:
//!
//! 1. **Write/energy table** — every domain at m ∈ {128, 512}, elision on
//!    vs off: setup writes, programming (write) energy, total energy,
//!    modeled run latency, NoC transfers. The off mode is the oracle —
//!    bit-for-bit, not approximately.
//! 2. **Bitwise identity** — for each row, elision-on `x`/`y` must equal
//!    the elision-off run *bitwise* at worker counts {1, 2, 8} (dead
//!    tiles contribute exact zeros; live tiles keep position-salted RNG
//!    streams and a fixed accumulation order).
//! 3. **Headline** — assignment at k = 256 (m = 512, n = 65536): the CI
//!    gate requires ≥ 50% setup-write and write-energy reduction and a
//!    strictly lower modeled MVM/run latency with elision on.
//!
//! Run cost is modeled hardware cost from the [`CostLedger`], not
//! wall-clock: the win is fewer cells programmed and fewer tile transfers
//! scheduled, which the ledger prices deterministically.
//!
//! [`CostLedger`]: memlp_crossbar::CostLedger

use memlp_core::{CrossbarPdhgOptions, CrossbarPdhgSolver, ANALOG_TILE_SIDE};
use memlp_crossbar::{CrossbarConfig, TileOccupancy};
use memlp_device::CostParams;
use memlp_linalg::parallel::with_threads;
use memlp_linalg::Matrix;
use memlp_lp::domains::{
    assignment_lp, max_flow_lp, production_schedule_lp, transportation_lp, AssignmentProblem,
    MaxFlowNetwork, ProductionPlan, TransportationProblem,
};
use memlp_lp::LpProblem;

const THREADS: [usize; 3] = [1, 2, 8];
const SEED: u64 = 21;
const VARIATION_PCT: f64 = 5.0;

/// Same constructors and seed as the PDHG crossover study, so rows line
/// up across benches.
fn build(domain: &'static str, m_target: usize) -> LpProblem {
    let lp = match (domain, m_target) {
        ("transport", 128) => transportation_lp(&TransportationProblem::random(4, 124, SEED)),
        ("transport", 512) => transportation_lp(&TransportationProblem::random(4, 508, SEED)),
        ("routing", 128) => max_flow_lp(&MaxFlowNetwork::random_layered(6, 6, SEED)),
        ("routing", 512) => max_flow_lp(&MaxFlowNetwork::random_layered(12, 12, SEED)),
        ("scheduling", 128) => production_schedule_lp(&ProductionPlan::random(8, 120, SEED)),
        ("scheduling", 512) => production_schedule_lp(&ProductionPlan::random(8, 504, SEED)),
        ("assignment", 128) => assignment_lp(&AssignmentProblem::random(64, SEED)),
        ("assignment", 512) => assignment_lp(&AssignmentProblem::random(256, SEED)),
        _ => unreachable!("unknown bench row"),
    };
    lp.expect("valid domain instance")
}

/// Tile-grid geometry of the sign-split planes the analog operator
/// programs (planned coefficients only — the same index the solver
/// builds).
fn plane_geometry(lp: &LpProblem) -> (u64, u64) {
    let a = lp.a();
    let pos = Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, j)].max(0.0));
    let neg = Matrix::from_fn(a.rows(), a.cols(), |i, j| (-a[(i, j)]).max(0.0));
    let p = TileOccupancy::from_matrix(&pos, ANALOG_TILE_SIDE);
    let n = TileOccupancy::from_matrix(&neg, ANALOG_TILE_SIDE);
    (
        (p.grid_tiles() + n.grid_tiles()) as u64,
        (p.live_tiles() + n.live_tiles()) as u64,
    )
}

struct ModeCost {
    status: String,
    iterations: usize,
    setup_writes: u64,
    tiles_elided: u64,
    elided_writes: u64,
    noc_transfers: u64,
    mvms: u64,
    write_energy_j: f64,
    energy_j: f64,
    run_time_s: f64,
    setup_time_s: f64,
    x_bits: Vec<u64>,
    y_bits: Vec<u64>,
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One analog PDHG solve with elision forced to `elide`. The large rows
/// are iteration-capped: cost accounting and bitwise identity are
/// trajectory properties, not convergence properties, and the trajectory
/// is identical across modes by construction.
fn run(lp: &LpProblem, m_target: usize, elide: bool) -> ModeCost {
    let cfg = CrossbarConfig::paper_default()
        .with_variation(VARIATION_PCT)
        .with_seed(SEED)
        .with_tile_elision(elide);
    let mut opts = CrossbarPdhgOptions::default();
    if m_target >= 512 {
        opts.pdhg.max_iterations = 400;
        opts.retries = 0;
    }
    let res = CrossbarPdhgSolver::new(cfg, opts).solve(lp);
    let ledger = res.ledger;
    let c = ledger.counts();
    let cost = CostParams::default();
    ModeCost {
        status: res.solution.status.to_string(),
        iterations: res.solution.iterations,
        setup_writes: c.setup_writes,
        tiles_elided: c.tiles_elided,
        elided_writes: c.elided_writes,
        noc_transfers: c.noc_transfers,
        mvms: c.mvm_ops,
        write_energy_j: cost.write_energy(VARIATION_PCT / 100.0)
            * (c.setup_writes + c.update_writes) as f64,
        energy_j: ledger.energy_j(&cost),
        run_time_s: ledger.run_time_s(),
        setup_time_s: ledger.setup_time_s(),
        x_bits: bits(&res.solution.x),
        y_bits: bits(&res.solution.y),
    }
}

fn reduction(off: f64, on: f64) -> f64 {
    if off > 0.0 {
        1.0 - on / off
    } else {
        0.0
    }
}

fn mode_json(m: &ModeCost) -> String {
    format!(
        "{{\"status\": \"{}\", \"iterations\": {}, \"setup_writes\": {}, \
         \"tiles_elided\": {}, \"elided_writes\": {}, \"noc_transfers\": {}, \
         \"mvms\": {}, \"write_energy_j\": {:.6}, \"energy_j\": {:.6}, \
         \"run_time_s\": {:.9}, \"setup_time_s\": {:.6}}}",
        m.status,
        m.iterations,
        m.setup_writes,
        m.tiles_elided,
        m.elided_writes,
        m.noc_transfers,
        m.mvms,
        m.write_energy_j,
        m.energy_j,
        m.run_time_s,
        m.setup_time_s,
    )
}

fn main() {
    println!(
        "block-sparse analog execution: zero-tile elision at tile side {ANALOG_TILE_SIDE}, \
         {VARIATION_PCT}% variation, seed {SEED}"
    );
    println!();
    println!(
        "{:>11} {:>5} {:>6} {:>6} {:>5} {:>12} {:>12} {:>7} {:>7} {:>8}",
        "domain",
        "m",
        "n",
        "tiles",
        "live",
        "writes off",
        "writes on",
        "wr red",
        "en red",
        "bitwise"
    );

    let domains = ["transport", "routing", "scheduling", "assignment"];
    let mut rows_json = String::new();
    let mut all_bitwise = true;
    let mut headline_pair: Option<(ModeCost, ModeCost)> = None;
    for &m_target in &[128usize, 512] {
        for domain in domains {
            let lp = build(domain, m_target);
            let (grid, live) = plane_geometry(&lp);

            // Oracle: elision off, one worker. Bit-for-bit, not a tolerance.
            let off = with_threads(1, || run(&lp, m_target, false));
            let on = with_threads(1, || run(&lp, m_target, true));

            // Elision on must be invisible at every worker count. The
            // one-worker run is `on` itself; the sweep covers the rest.
            let mut bitwise = on.x_bits == off.x_bits && on.y_bits == off.y_bits;
            for &threads in THREADS.iter().filter(|&&t| t != 1) {
                let t = with_threads(threads, || run(&lp, m_target, true));
                bitwise &= t.x_bits == off.x_bits && t.y_bits == off.y_bits;
            }
            all_bitwise &= bitwise;

            let wr_red = reduction(off.setup_writes as f64, on.setup_writes as f64);
            let we_red = reduction(off.write_energy_j, on.write_energy_j);
            let en_red = reduction(off.energy_j, on.energy_j);
            let rt_red = reduction(off.run_time_s, on.run_time_s);
            println!(
                "{domain:>11} {:>5} {:>6} {:>6} {:>5} {:>12} {:>12} {:>6.1}% {:>6.1}% {:>8}",
                lp.num_constraints(),
                lp.num_vars(),
                grid,
                live,
                off.setup_writes,
                on.setup_writes,
                wr_red * 100.0,
                en_red * 100.0,
                if bitwise { "ok" } else { "FAIL" },
            );
            if !rows_json.is_empty() {
                rows_json.push_str(",\n");
            }
            rows_json.push_str(&format!(
                "    {{\"domain\": \"{domain}\", \"m_target\": {m_target}, \"m\": {}, \
                 \"n\": {}, \"grid_tiles\": {grid}, \"live_tiles\": {live}, \
                 \"off\": {}, \"on\": {}, \"write_reduction\": {wr_red:.6}, \
                 \"write_energy_reduction\": {we_red:.6}, \"energy_reduction\": {en_red:.6}, \
                 \"run_time_reduction\": {rt_red:.6}, \"bitwise_identical\": {bitwise}, \
                 \"threads_checked\": [1, 2, 8]}}",
                lp.num_constraints(),
                lp.num_vars(),
                mode_json(&off),
                mode_json(&on),
            ));
            if domain == "assignment" && m_target == 512 {
                headline_pair = Some((off, on));
            }
        }
    }

    // --- Headline: assignment at k = 256 agents. Half the positive-plane
    // tiles and the whole negative plane are planned dead, so the full-
    // grid fabrication sweep is mostly hardware that never needed to
    // exist.
    let lp = build("assignment", 512);
    let (grid, live) = plane_geometry(&lp);
    let (off, on) = headline_pair.expect("assignment@512 row ran");
    let hl_bitwise = on.x_bits == off.x_bits && on.y_bits == off.y_bits;
    let wr_red = reduction(off.setup_writes as f64, on.setup_writes as f64);
    let we_red = reduction(off.write_energy_j, on.write_energy_j);
    let en_red = reduction(off.energy_j, on.energy_j);
    let latency_win = on.run_time_s < off.run_time_s;
    println!();
    println!(
        "headline assignment@k=256: {live}/{grid} tiles live, writes {} -> {} \
         ({:.1}% reduction), write energy {:.3} J -> {:.3} J, run {:.3} ms -> {:.3} ms",
        off.setup_writes,
        on.setup_writes,
        wr_red * 100.0,
        off.write_energy_j,
        on.write_energy_j,
        off.run_time_s * 1e3,
        on.run_time_s * 1e3,
    );

    let gate_pass =
        all_bitwise && hl_bitwise && wr_red >= 0.5 && we_red >= 0.5 && en_red >= 0.5 && latency_win;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"tile_sparsity\",\n");
    json.push_str(
        "  \"suite\": \"block-sparse analog execution: zero-tile elision on the analog PDHG \
         backend, elision-off as bitwise oracle\",\n",
    );
    json.push_str(&format!("  \"tile_side\": {ANALOG_TILE_SIDE},\n"));
    json.push_str(&format!("  \"variation_pct\": {VARIATION_PCT},\n"));
    json.push_str("  \"rows\": [\n");
    json.push_str(&rows_json);
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"headline\": {{\"domain\": \"assignment\", \"agents\": 256, \"m\": {}, \"n\": {}, \
         \"grid_tiles\": {grid}, \"live_tiles\": {live}, \"off\": {}, \"on\": {}, \
         \"write_reduction\": {wr_red:.6}, \"write_energy_reduction\": {we_red:.6}, \
         \"energy_reduction\": {en_red:.6}, \"mvm_latency_win\": {latency_win}, \
         \"bitwise_identical\": {hl_bitwise}}},\n",
        lp.num_constraints(),
        lp.num_vars(),
        mode_json(&off),
        mode_json(&on),
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"all_rows_bitwise\": {all_bitwise}, \"write_reduction_min\": 0.5, \
         \"write_energy_reduction_min\": 0.5, \"energy_reduction_min\": 0.5, \
         \"mvm_latency_win\": {latency_win}}},\n"
    ));
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_tile_sparsity.json");
    std::fs::write(&path, &json).expect("write BENCH_tile_sparsity.json");
    println!("wrote {}", path.display());

    assert!(
        gate_pass,
        "tile-sparsity gate failed: bitwise={all_bitwise}/{hl_bitwise} \
         write_red={wr_red:.3} write_energy_red={we_red:.3} energy_red={en_red:.3} \
         latency_win={latency_win}"
    );
}
