//! **Ablation A3** — NoC topology and tile size (§3.4, Fig 3). For a fixed
//! large matrix, sweeps the physical tile side and compares hierarchical vs
//! mesh fabrics on MVM accuracy and NoC overheads.

use memlp_bench::{fmt_time, Table};
use memlp_crossbar::CrossbarConfig;
use memlp_linalg::Matrix;
use memlp_noc::{NocConfig, TiledCrossbar};

fn main() {
    let n = 256;
    let a = Matrix::from_fn(n, n, |i, j| {
        0.05 + ((i * 131 + j * 37) % 29) as f64 * 0.03 + if i == j { 6.0 } else { 0.0 }
    });
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.21).sin()).collect();
    let exact = a.matvec(&x);
    let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));

    let mut t = Table::new(
        format!("Tiled {n}×{n} MVM: tile size × topology"),
        &[
            "tile",
            "tiles",
            "topology",
            "max err %",
            "noc transfers",
            "noc+array time",
        ],
    );
    for tile in [32usize, 64, 128, 256] {
        for (name, noc) in [
            ("hierarchical", NocConfig::hierarchical()),
            ("mesh", NocConfig::mesh()),
        ] {
            let mut tiled = TiledCrossbar::program(&a, tile, CrossbarConfig::paper_default(), noc)
                .expect("fits");
            let y = tiled.mvm(&x).expect("shapes");
            let err = y
                .iter()
                .zip(&exact)
                .map(|(g, w)| (g - w).abs())
                .fold(0.0f64, f64::max)
                / scale;
            let ledger = tiled.ledger();
            t.row(vec![
                tile.to_string(),
                tiled.tile_count().to_string(),
                name.into(),
                format!("{:.3}", err * 100.0),
                ledger.counts().noc_transfers.to_string(),
                fmt_time(ledger.run_time_s()),
            ]);
        }
    }
    t.finish("ablation_noc");
    println!("\nExpected shape: smaller tiles → more transfers and buffer noise;");
    println!("mesh pays more hops than the arbiter tree at high tile counts.");
}
