//! Microbenchmark for the register-tiled digital kernels (DESIGN.md §14).
//!
//! Measures flop rates for the hot dense kernels — matvec, matmul,
//! `scaled_gram`, blocked LU, CSR SpMV — at m ∈ {128, 512} under three
//! regimes: a *naive* single-accumulator scalar loop (written here, the
//! pre-lane baseline), the *plain* 4-lane reference loops
//! (`KernelPolicy::plain`, the pre-tiling production code), and the
//! register-*tiled* default policy. Kernel rates are pinned to one worker
//! (`with_threads(1)`) so they measure instruction-level throughput, not
//! the thread pool; the end-to-end rows run with the default thread budget
//! because that is what a solver iteration sees.
//!
//! Emits `BENCH_kernels.json` at the repository root and *asserts*:
//!   * every measured rate is physically sane (0.01–1000 GF/s — the
//!     flop-rate assertion that catches a mis-counted flops model), and
//!   * the tiled m = 512 dense matvec clears `GATE_MIN_SPEEDUP` over the
//!     naive scalar baseline (the CI gate; best of up to three
//!     back-to-back naive/tiled trials, so host steal on a shared
//!     runner cannot flake a genuinely fast kernel).
//!
//! The JSON also carries the `threading_cutoff` cell: the measured kernel
//! rate and two-worker dispatch overhead behind the re-measured
//! `MIN_FLOPS_PER_THREAD` in `memlp-linalg::parallel`.

use std::hint::black_box;
use std::time::Instant;

use memlp_bench::fmt_time;
use memlp_core::{AugmentedSystem, HwContext};
use memlp_crossbar::CrossbarConfig;
use memlp_linalg::kernels::KernelPolicy;
use memlp_linalg::parallel::{self, with_threads, MIN_FLOPS_PER_THREAD};
use memlp_linalg::{kernels, LuFactors, Matrix, SparseMatrix};
use memlp_lp::domains::{transportation_lp, TransportationProblem};
use memlp_lp::LpProblem;
use memlp_solvers::pdip::{PdipOptions, PdipState};
use memlp_solvers::SolvePath;

/// Tiled-over-naive speedup the m = 512 dense matvec must clear.
const GATE_MIN_SPEEDUP: f64 = 2.0;
/// Problem sizes for every kernel row.
const SIZES: [usize; 2] = [128, 512];

fn test_matrix(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let h = (i * 7919 + j * 104_729 + seed * 15_485_863) % 1000;
        (h as f64) / 1000.0 - 0.5
    })
}

fn dominant_matrix(n: usize, seed: usize) -> Matrix {
    let mut a = test_matrix(n, n, seed);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

fn test_vec(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|j| (((j * 2_654_435_761 + seed) % 1000) as f64) / 1000.0 - 0.5)
        .collect()
}

/// Banded CSR test matrix: 16 nonzeros per interior row.
fn band_matrix(n: usize) -> SparseMatrix {
    let mut triplets = Vec::new();
    for i in 0..n {
        for d in 0..16usize {
            let j = (i + d * 5) % n;
            triplets.push((i, j, ((i + j) % 7) as f64 - 3.0));
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets).expect("valid band pattern")
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median GF/s of `f`, which performs `flops` floating-point operations
/// per call. Each rep times `inner` back-to-back calls so short kernels
/// are measured over ≥ milliseconds, not timer granularity.
fn gflops(flops: u64, f: impl FnMut()) -> f64 {
    let mut f = f;
    // Calibrate the inner loop to ~10 ms per rep.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let inner = ((0.01 / once) as usize).clamp(1, 10_000);
    let reps = 9;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        times.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    flops as f64 / median(times) / 1e9
}

/// The naive scalar baseline: one accumulator, no lane structure — the
/// loop every variant must beat for the tiling to have paid for itself.
fn naive_matvec(a: &Matrix, x: &[f64], y: &mut [f64]) {
    let cols = a.cols();
    let data = a.as_slice();
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (av, xv) in data[i * cols..(i + 1) * cols].iter().zip(x) {
            acc += av * xv;
        }
        *yi = acc;
    }
}

/// Naive i-j-k matmul with one accumulator per output element.
fn naive_matmul(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = acc;
        }
    }
}

/// Naive CSR row loop, one accumulator per row.
fn naive_spmv(s: &SparseMatrix, x: &[f64], y: &mut [f64]) {
    let rp = s.row_ptr();
    let ci = s.col_idx();
    let vals = s.values();
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for idx in rp[i]..rp[i + 1] {
            acc += vals[idx] * x[ci[idx]];
        }
        *yi = acc;
    }
}

struct KernelRow {
    kernel: &'static str,
    m: usize,
    flops: u64,
    naive: f64,
    plain: f64,
    tiled: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.tiled / self.naive
    }
}

fn measure_kernels() -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &m in &SIZES {
        let a = test_matrix(m, m, 1);
        let b = test_matrix(m, m, 2);
        let x = test_vec(m, 3);
        let d: Vec<f64> = test_vec(m, 4).iter().map(|v| v.abs() + 0.1).collect();
        let lu_src = dominant_matrix(m, 5);
        let sp = band_matrix(m);

        // All kernel rates single-threaded: ILP throughput, not the pool.
        with_threads(1, || {
            let mv_flops = 2 * (m * m) as u64;
            let mut y = vec![0.0; m];
            rows.push(KernelRow {
                kernel: "matvec",
                m,
                flops: mv_flops,
                naive: gflops(mv_flops, || naive_matvec(&a, black_box(&x), &mut y)),
                plain: gflops(mv_flops, || {
                    kernels::with_policy(KernelPolicy::plain(), || {
                        black_box(a.matvec(black_box(&x)));
                    })
                }),
                tiled: gflops(mv_flops, || {
                    black_box(a.matvec(black_box(&x)));
                }),
            });

            let mm_flops = 2 * (m * m * m) as u64;
            let mut c = Matrix::zeros(m, m);
            rows.push(KernelRow {
                kernel: "matmul",
                m,
                flops: mm_flops,
                naive: gflops(mm_flops, || naive_matmul(&a, black_box(&b), &mut c)),
                plain: gflops(mm_flops, || {
                    kernels::with_policy(KernelPolicy::plain(), || {
                        black_box(a.matmul(black_box(&b)).unwrap());
                    })
                }),
                tiled: gflops(mm_flops, || {
                    black_box(a.matmul(black_box(&b)).unwrap());
                }),
            });

            // scaled_gram has no naive twin in this file: its pre-lane
            // form is exactly the plain policy (scale + lane dot per
            // row), so the naive column reports the plain rate.
            let sg_flops = (2 * m * m * m + m * m) as u64;
            let plain_sg = gflops(sg_flops, || {
                kernels::with_policy(KernelPolicy::plain(), || {
                    black_box(a.scaled_gram(black_box(&d)));
                })
            });
            rows.push(KernelRow {
                kernel: "scaled_gram",
                m,
                flops: sg_flops,
                naive: plain_sg,
                plain: plain_sg,
                tiled: gflops(sg_flops, || {
                    black_box(a.scaled_gram(black_box(&d)));
                }),
            });

            // LU: the 2/3·n³ model; the naive column mirrors plain for
            // the same reason (the pre-tiling trailing update is the
            // plain-policy path).
            let lu_flops = 2 * (m * m * m) as u64 / 3;
            let plain_lu = gflops(lu_flops, || {
                kernels::with_policy(KernelPolicy::plain(), || {
                    black_box(LuFactors::factor(lu_src.clone()).unwrap());
                })
            });
            rows.push(KernelRow {
                kernel: "lu_factor",
                m,
                flops: lu_flops,
                naive: plain_lu,
                plain: plain_lu,
                tiled: gflops(lu_flops, || {
                    black_box(LuFactors::factor(lu_src.clone()).unwrap());
                }),
            });

            let sp_flops = 2 * sp.nnz() as u64;
            let mut ys = vec![0.0; m];
            rows.push(KernelRow {
                kernel: "spmv",
                m,
                flops: sp_flops,
                naive: gflops(sp_flops, || naive_spmv(&sp, black_box(&x), &mut ys)),
                // The CSR gather tree is policy-independent: plain and
                // tiled are the same code, reported once each.
                plain: gflops(sp_flops, || {
                    black_box(sp.matvec(black_box(&x)));
                }),
                tiled: gflops(sp_flops, || {
                    black_box(sp.matvec(black_box(&x)));
                }),
            });
        });
    }
    rows
}

struct NewtonRow {
    m: usize,
    n: usize,
    plain_secs: f64,
    tiled_secs: f64,
}

/// End-to-end per-iteration Newton cost: the dense-path core solve of a
/// transport instance (programming, rhs assembly, and warmup excluded),
/// timed under the plain policy and under the default tiled policy, with
/// the default thread budget — the dense digital work a solver iteration
/// actually pays.
fn measure_newton(m_target: usize) -> NewtonRow {
    let lp: LpProblem = transportation_lp(&TransportationProblem::random(4, m_target - 4, 21))
        .expect("valid domain instance");
    let mut hw = HwContext::new(CrossbarConfig::ideal().with_seed(11));
    let opts = PdipOptions::default();
    let state = PdipState::new(&lp, &opts);
    let mut sys = AugmentedSystem::program(&lp, &state, &mut hw);
    sys.set_solve_path(SolvePath::Dense);
    let mu = state.mu(opts.delta);
    let s = sys.s_vector(&state);
    let ms = sys.mvm(&s, &mut hw);
    let constant = sys.rhs_constant(&lp, mu);
    let r = sys.assemble_rhs(&constant, &ms);

    let mut time_policy = |policy: Option<KernelPolicy>| {
        let mut run = || match policy {
            Some(p) => kernels::with_policy(p, || sys.solve(&r, &mut hw)),
            None => sys.solve(&r, &mut hw),
        };
        run().expect("solvable system"); // warmup
        let reps = 7;
        let mut times = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            black_box(run().expect("solvable system"));
            times.push(t.elapsed().as_secs_f64());
        }
        median(times)
    };
    let plain_secs = time_policy(Some(KernelPolicy::plain()));
    let tiled_secs = time_policy(None);
    NewtonRow {
        m: lp.num_constraints(),
        n: lp.num_vars(),
        plain_secs,
        tiled_secs,
    }
}

/// One extra naive/tiled matvec@512 pair, timed back-to-back, for the
/// gate retrials.
fn gate_matvec_trial() -> (f64, f64) {
    let m = 512;
    let a = test_matrix(m, m, 1);
    let x = test_vec(m, 3);
    let mut y = vec![0.0; m];
    let flops = 2 * (m * m) as u64;
    with_threads(1, || {
        (
            gflops(flops, || naive_matvec(&a, black_box(&x), &mut y)),
            gflops(flops, || {
                black_box(a.matvec(black_box(&x)));
            }),
        )
    })
}

/// Measured inputs behind `MIN_FLOPS_PER_THREAD`: the single-thread tiled
/// matvec rate and the wall cost of dispatching a two-worker band split,
/// whose product (flops retired during one dispatch) is the break-even
/// work a spawned worker must amortize.
fn measure_cutoff(tiled_matvec_gflops: f64) -> (f64, f64) {
    let mut buf = vec![0.0f64; 64];
    let reps = 200;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        parallel::par_bands(2, black_box(&mut buf), |_, band| {
            black_box(band);
        });
        times.push(t.elapsed().as_secs_f64());
    }
    let overhead = median(times);
    let implied = tiled_matvec_gflops * 1e9 * overhead;
    (overhead, implied)
}

fn main() {
    println!("register-tiled kernel microbench (single-thread rates, GF/s)");
    println!();
    println!(
        "{:>12} {:>5} {:>12} {:>8} {:>8} {:>8} {:>9}",
        "kernel", "m", "flops", "naive", "plain", "tiled", "tiled/nv"
    );
    let rows = measure_kernels();
    for r in &rows {
        println!(
            "{:>12} {:>5} {:>12} {:>8.2} {:>8.2} {:>8.2} {:>8.2}x",
            r.kernel,
            r.m,
            r.flops,
            r.naive,
            r.plain,
            r.tiled,
            r.speedup()
        );
    }

    println!();
    println!("end-to-end dense-path Newton iteration (default threads)");
    let newton: Vec<NewtonRow> = SIZES.iter().map(|&m| measure_newton(m)).collect();
    for r in &newton {
        println!(
            "  transport m={:<4} n={:<5} plain {:>10}  tiled {:>10}  ({:.2}x)",
            r.m,
            r.n,
            fmt_time(r.plain_secs),
            fmt_time(r.tiled_secs),
            r.plain_secs / r.tiled_secs
        );
    }

    let gate_row = rows
        .iter()
        .find(|r| r.kernel == "matvec" && r.m == 512)
        .expect("gate row present");
    let (overhead, implied) = measure_cutoff(gate_row.tiled);
    println!();
    println!(
        "threading cutoff: {:.2} GF/s x {:.1} µs dispatch = {:.0} flops \
         (MIN_FLOPS_PER_THREAD = {MIN_FLOPS_PER_THREAD})",
        gate_row.tiled,
        overhead * 1e6,
        implied
    );

    // The flop-rate assertion: every measured rate must be physically
    // sane, or the flops model in some row is wrong.
    for r in &rows {
        for (variant, rate) in [("naive", r.naive), ("plain", r.plain), ("tiled", r.tiled)] {
            assert!(
                rate.is_finite() && (0.01..1000.0).contains(&rate),
                "{}@{} {variant}: {rate} GF/s is not a believable flop rate",
                r.kernel,
                r.m
            );
        }
    }

    // The gate is best-of-3: on a shared 1-vCPU runner the single-shot
    // ratio swings tens of percent with host steal, which deflates the
    // naive and tiled timings asymmetrically. Each retrial re-times the
    // naive/tiled pair back-to-back and the gate takes the best trial —
    // transient host load cannot fail a genuinely 2x kernel, while a
    // kernel that truly lost the speedup fails all three.
    let mut gate_trials = vec![(gate_row.naive, gate_row.tiled)];
    while gate_trials.len() < 3
        && !gate_trials
            .iter()
            .any(|&(nv, td)| td / nv >= GATE_MIN_SPEEDUP)
    {
        gate_trials.push(gate_matvec_trial());
    }
    let (gate_naive, gate_tiled) = gate_trials
        .iter()
        .copied()
        .max_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)))
        .expect("at least one gate trial");
    let gate_speedup = gate_tiled / gate_naive;
    let gate_pass = gate_speedup >= GATE_MIN_SPEEDUP;
    println!(
        "gate matvec@512 tiled vs naive: {gate_speedup:.2}x over {} trial(s) \
         (need >= {GATE_MIN_SPEEDUP}x)",
        gate_trials.len()
    );

    // --- BENCH_kernels.json at the repository root.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"kernel_tiles\",\n");
    json.push_str("  \"suite\": \"register-tiled digital kernels, single-thread flop rates\",\n");
    json.push_str(&format!("  \"gate_min_speedup\": {GATE_MIN_SPEEDUP},\n"));
    json.push_str("  \"gate_row\": \"matvec@512 tiled vs naive scalar\",\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"m\": {}, \"flops\": {}, \
             \"naive_gflops\": {:.3}, \"plain_gflops\": {:.3}, \
             \"tiled_gflops\": {:.3}, \"speedup_vs_naive\": {:.3}}}{}\n",
            r.kernel,
            r.m,
            r.flops,
            r.naive,
            r.plain,
            r.tiled,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"newton_iteration\": [\n");
    for (i, r) in newton.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"domain\": \"transport\", \"path\": \"dense\", \"m\": {}, \"n\": {}, \
             \"plain_secs\": {:.6}, \"tiled_secs\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.m,
            r.n,
            r.plain_secs,
            r.tiled_secs,
            r.plain_secs / r.tiled_secs,
            if i + 1 < newton.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"threading_cutoff\": {{\"min_flops_per_thread\": {MIN_FLOPS_PER_THREAD}, \
         \"tiled_matvec_gflops\": {:.3}, \"dispatch_overhead_secs\": {:.3e}, \
         \"implied_cutoff_flops\": {:.0}, \"method\": \"single-thread tiled matvec rate \
         times the measured two-worker par_bands dispatch wall cost; the constant is \
         that product rounded up to a power of two so a spawned worker amortizes at \
         least one dispatch of work\"}},\n",
        gate_row.tiled, overhead, implied
    ));
    json.push_str("  \"gate_trials\": [\n");
    for (i, (nv, td)) in gate_trials.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"naive_gflops\": {nv:.3}, \"tiled_gflops\": {td:.3}, \
             \"speedup\": {:.3}}}{}\n",
            td / nv,
            if i + 1 < gate_trials.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"gate_speedup\": {gate_speedup:.3},\n"));
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());

    assert!(
        gate_pass,
        "kernel gate failed: tiled m=512 matvec is {gate_speedup:.2}x the naive \
         scalar baseline (need >= {GATE_MIN_SPEEDUP}x)"
    );
}
