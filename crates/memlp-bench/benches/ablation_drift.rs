//! **Ablation A8** — conductance drift and periodic refresh (beyond-paper
//! physical effect). The paper assumes perfect retention during a solve —
//! reasonable at millisecond timescales and second-scale retention. This
//! ablation sweeps the retention time constant τ and shows (a) when the
//! assumption breaks and (b) how much a periodic static-block refresh
//! buys back, at what write cost.

use memlp_bench::{run_trials, Stats, Table};
use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_device::DriftModel;
use memlp_lp::generator::RandomLp;
use memlp_solvers::{LpSolver, NormalEqPdip};

fn main() {
    let m = 48;
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Ablation: retention τ × refresh cadence at m = {m}, 5% variation, {trials} trials");
    println!("(a solve at this size runs ~2-20 ms of hardware time)");

    let mut t = Table::new(
        "Algorithm 1 vs drift time constant and refresh cadence",
        &[
            "tau",
            "refresh every",
            "mean err %",
            "max err %",
            "success",
            "extra writes",
        ],
    );
    for (tau_label, tau) in [
        ("none", None),
        ("10 s", Some(10.0)),
        ("1 s", Some(1.0)),
        ("100 ms", Some(0.1)),
        ("30 ms", Some(0.03)),
    ] {
        for refresh in [0usize, 10] {
            if tau.is_none() && refresh > 0 {
                continue;
            }
            let outcomes = run_trials(trials, |trial| {
                let seed = 11_000 + trial as u64;
                let lp = RandomLp::paper(m, seed).feasible();
                let reference = NormalEqPdip::default().solve(&lp);
                let cfg = CrossbarConfig {
                    drift: tau
                        .map(DriftModel::exponential)
                        .unwrap_or_else(DriftModel::none),
                    ..CrossbarConfig::paper_default()
                        .with_variation(5.0)
                        .with_seed(seed)
                };
                let opts = CrossbarSolverOptions {
                    refresh_every: refresh,
                    ..Default::default()
                };
                let r = CrossbarPdipSolver::new(cfg, opts).solve(&lp);
                let err = if r.solution.status.is_optimal() {
                    (r.solution.objective - reference.objective).abs()
                        / (1.0 + reference.objective.abs())
                } else {
                    f64::NAN
                };
                (
                    err,
                    r.ledger.counts().update_writes as f64,
                    r.solution.status.is_optimal(),
                )
            });
            let ok = outcomes.iter().filter(|o| o.2).count();
            let errs: Stats = outcomes.iter().map(|o| o.0).collect();
            let writes: Stats = outcomes.iter().map(|o| o.1).collect();
            t.row(vec![
                tau_label.into(),
                if refresh == 0 {
                    "never".into()
                } else {
                    refresh.to_string()
                },
                format!("{:.3}", errs.mean() * 100.0),
                format!("{:.3}", errs.max() * 100.0),
                format!("{ok}/{trials}"),
                format!("{:.0}", writes.mean()),
            ]);
        }
    }
    t.finish("ablation_drift");
    println!("\nExpected shape: harmless until τ approaches the solve duration; refresh");
    println!("restores accuracy at the price of periodic O(nnz) rewrites.");
}
