//! **Ablation A4** — stuck-at faults (beyond-paper robustness probe). The
//! paper studies multiplicative variation only; real arrays also suffer
//! hard defects. How much of the PDIP loop's noise tolerance carries over?

use memlp_bench::{run_trials, Stats, Table};
use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::{CrossbarConfig, FaultModel};
use memlp_lp::generator::RandomLp;
use memlp_solvers::{LpSolver, NormalEqPdip};

fn main() {
    let m = 48;
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Ablation: stuck-at fault rate at m = {m}, 5% variation, {trials} trials");

    let mut t = Table::new(
        "Algorithm 1 vs symmetric stuck-at fault rate",
        &["fault rate", "mean err %", "max err %", "success"],
    );
    for rate in [0.0, 1e-4, 1e-3, 5e-3, 1e-2] {
        let outcomes = run_trials(trials, |trial| {
            let seed = 6000 + trial as u64;
            let lp = RandomLp::paper(m, seed).feasible();
            let reference = NormalEqPdip::default().solve(&lp);
            let cfg = CrossbarConfig::paper_default()
                .with_variation(5.0)
                .with_seed(seed)
                .with_faults(FaultModel::symmetric(rate).expect("valid fault rate"));
            let r = CrossbarPdipSolver::new(cfg, CrossbarSolverOptions::default()).solve(&lp);
            if r.solution.status.is_optimal() {
                Some(
                    (r.solution.objective - reference.objective).abs()
                        / (1.0 + reference.objective.abs()),
                )
            } else {
                None
            }
        });
        let ok = outcomes.iter().filter(|o| o.is_some()).count();
        let errs: Stats = outcomes.into_iter().flatten().collect();
        t.row(vec![
            format!("{rate}"),
            format!("{:.3}", errs.mean() * 100.0),
            format!("{:.3}", errs.max() * 100.0),
            format!("{ok}/{trials}"),
        ]);
    }
    t.finish("ablation_faults");
    println!("\nExpected shape: graceful degradation through ~1e-3, breakdown near 1e-2 —");
    println!("hard defects are costlier than the same magnitude of analog variation.");
}
