//! **§4.4 headline numbers** — the largest-size comparison the paper
//! quotes in prose:
//!
//! * feasible, m = 1024: `linprog` 6.23 s / 218.1 J; crossbar 78–239 ms and
//!   0.9–12.1 J depending on variation (≥ 26× speed, ≥ 24× energy);
//! * infeasible, m = 1024: `linprog` ~30 s / 1023 J; crossbar 265 ms /
//!   10.9 J at 20% variation (≥ 113×).
//!
//! This bench reproduces the table at the largest size in the active sweep
//! (default m = 256; set `MEMLP_FULL=1` for m = 1024).

use memlp_bench::experiments::{run_one, SolverKind};
use memlp_bench::{cpu_energy_j, fmt_energy, fmt_time, run_trials, Stats, Sweep, Table};
use memlp_lp::generator::RandomLp;
use memlp_lp::LpStatus;
use memlp_solvers::{LpSolver, NormalEqPdip};
use std::time::Instant;

fn main() {
    let sweep = Sweep::paper(1024);
    let m = *sweep.sizes.last().expect("non-empty sweep");
    let trials = sweep.trials.min(5);
    println!("§4.4 headline table at m = {m} ({trials} trials/cell)");

    // Software baseline on feasible and infeasible instances.
    let sw_feas: Stats = run_trials(trials, |t| {
        let lp = RandomLp::paper(m, 9000 + t as u64).feasible();
        let t0 = Instant::now();
        let s = NormalEqPdip::default().solve(&lp);
        let wall = t0.elapsed().as_secs_f64();
        if s.status.is_optimal() {
            wall
        } else {
            f64::NAN
        }
    })
    .into_iter()
    .collect();
    let sw_inf: Stats = run_trials(trials, |t| {
        let lp = RandomLp::paper(m, 9100 + t as u64).infeasible();
        let t0 = Instant::now();
        let s = NormalEqPdip::default().solve(&lp);
        let wall = t0.elapsed().as_secs_f64();
        if s.status == LpStatus::Infeasible {
            wall
        } else {
            f64::NAN
        }
    })
    .into_iter()
    .collect();

    let mut t = Table::new(
        format!("§4.4 headline (m = {m}): latency & energy vs variation"),
        &[
            "workload",
            "solver",
            "var %",
            "latency",
            "energy",
            "speedup",
            "energy ratio",
        ],
    );
    t.row(vec![
        "feasible".into(),
        "linprog-sub".into(),
        "-".into(),
        fmt_time(sw_feas.mean()),
        fmt_energy(cpu_energy_j(sw_feas.mean())),
        "1.0x".into(),
        "1.0x".into(),
    ]);
    t.row(vec![
        "infeasible".into(),
        "linprog-sub".into(),
        "-".into(),
        fmt_time(sw_inf.mean()),
        fmt_energy(cpu_energy_j(sw_inf.mean())),
        "1.0x".into(),
        "1.0x".into(),
    ]);

    for kind in [SolverKind::Alg1, SolverKind::Alg2] {
        for &var in &[0.0, 5.0, 10.0, 20.0] {
            for (label, infeasible, sw) in
                [("feasible", false, &sw_feas), ("infeasible", true, &sw_inf)]
            {
                let outcomes = run_trials(trials, |tr| {
                    let seed = 9200 + tr as u64 + (var as u64) * 7;
                    let gen = RandomLp::paper(m, seed);
                    let lp = if infeasible {
                        gen.infeasible()
                    } else {
                        gen.feasible()
                    };
                    run_one(kind, &lp, var, seed)
                });
                let expected = if infeasible {
                    LpStatus::Infeasible
                } else {
                    LpStatus::Optimal
                };
                let lat: Stats = outcomes
                    .iter()
                    .filter(|o| o.status == expected)
                    .map(|o| o.hw_run_s)
                    .collect();
                let en: Stats = outcomes
                    .iter()
                    .filter(|o| o.status == expected)
                    .map(|o| o.hw_energy_j)
                    .collect();
                t.row(vec![
                    label.into(),
                    kind.label().into(),
                    format!("{var:.0}"),
                    fmt_time(lat.mean()),
                    fmt_energy(en.mean()),
                    format!("{:.1}x", sw.mean() / lat.mean()),
                    format!("{:.1}x", cpu_energy_j(sw.mean()) / en.mean()),
                ]);
            }
        }
    }
    t.finish("headline_table");
}
