//! Incremental-reprogramming study: write traffic of Algorithm 1 with
//! delta programming **off** (every refresh and update re-pulses the full
//! block — the paper's implicit baseline) versus **on** (cells whose
//! write-quantized code is unchanged are verified but not pulsed).
//!
//! The suite runs the paper-scale generator with a periodic static-block
//! refresh cadence, the regime where reprogramming cost dominates: on
//! drift-free hardware every refresh rewrite is redundant and delta
//! programming should elide nearly all of it. Solutions are bitwise
//! identical between the two columns (enforced by
//! `memlp-core/tests/delta_identity.rs`); only the cost ledger moves.
//!
//! Emits `BENCH_incremental.json` at the repository root (hand-rolled
//! JSON — no serde in the offline dependency set). The headline metric is
//! the reduction in cells written after initial programming
//! (`update_writes`), which CI guards against regression.

use std::time::Instant;

use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_device::CostParams;
use memlp_lp::generator::RandomLp;
use memlp_lp::LpProblem;

/// Constraint count of every suite problem (n = m/3, per §4.2).
const M: usize = 48;
const SEEDS: [u64; 4] = [1400, 1401, 1402, 1403];
/// Static-block refresh cadence (iterations). Drift is off in
/// `paper_default`, so every refresh is a pure redundancy test.
const REFRESH_EVERY: usize = 4;
/// CI regression budget: delta-on cells written (setup + update, summed
/// over the suite) must not exceed this baseline by more than 10%.
/// Re-baseline deliberately when the solver's write pattern changes.
const BASELINE_CELLS_WRITTEN: u64 = 15174;

#[derive(Default)]
struct Column {
    setup: u64,
    update: u64,
    skipped: u64,
    reuse: u64,
    energy_j: f64,
    secs: f64,
    iterations: usize,
}

fn suite() -> Vec<LpProblem> {
    SEEDS
        .iter()
        .map(|&s| RandomLp::paper(M, s).feasible())
        .collect()
}

fn run(delta: bool, lps: &[LpProblem]) -> Column {
    let solver = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(11)
            .with_delta_writes(delta),
        CrossbarSolverOptions {
            refresh_every: REFRESH_EVERY,
            ..CrossbarSolverOptions::default()
        },
    );
    let mut col = Column::default();
    let t = Instant::now();
    for lp in lps {
        let res = solver.solve(lp);
        assert!(
            res.solution.status.is_optimal(),
            "suite problem failed: {}",
            res.solution
        );
        let c = res.ledger.counts();
        col.setup += c.setup_writes;
        col.update += c.update_writes;
        col.skipped += c.skipped_writes;
        col.reuse += c.rebuilds_avoided;
        col.energy_j += res.ledger.energy_j(&CostParams::default());
        col.iterations += res.solution.iterations;
    }
    col.secs = t.elapsed().as_secs_f64();
    col
}

fn main() {
    let lps = suite();
    println!(
        "incremental reprogramming: Algorithm 1, m = {M}, {} LPs, refresh every {REFRESH_EVERY} iters",
        lps.len()
    );
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>8} {:>11}",
        "delta", "setup", "update", "skipped", "reuse", "energy mJ"
    );

    let full = run(false, &lps);
    let delta = run(true, &lps);
    for (name, c) in [("off", &full), ("on", &delta)] {
        println!(
            "{name:>10} {:>12} {:>12} {:>12} {:>8} {:>11.3}",
            c.setup,
            c.update,
            c.skipped,
            c.reuse,
            c.energy_j * 1e3
        );
    }
    assert_eq!(
        full.iterations, delta.iterations,
        "delta programming changed iteration counts — identity broken"
    );

    let update_reduction = 1.0 - delta.update as f64 / full.update as f64;
    let total_reduction =
        1.0 - (delta.setup + delta.update) as f64 / (full.setup + full.update) as f64;
    let energy_reduction = 1.0 - delta.energy_j / full.energy_j;
    let cells_written = delta.setup + delta.update;
    println!();
    println!("update-write reduction: {:.1}%", update_reduction * 100.0);
    println!("total-write reduction:  {:.1}%", total_reduction * 100.0);
    println!("energy reduction:       {:.1}%", energy_reduction * 100.0);
    println!("cells written (delta on): {cells_written} (baseline {BASELINE_CELLS_WRITTEN})");

    let reduction_ok = update_reduction >= 0.50;
    let within_budget = cells_written as f64 <= BASELINE_CELLS_WRITTEN as f64 * 1.10;
    let gate_pass = reduction_ok && within_budget;

    // --- BENCH_incremental.json at the repository root.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"incremental\",\n");
    json.push_str(&format!(
        "  \"suite\": \"RandomLp::paper(m={M}), Algorithm 1, 5% variation, refresh every {REFRESH_EVERY} iters, {} LPs\",\n",
        lps.len()
    ));
    for (name, c) in [("full_reprogram", &full), ("delta", &delta)] {
        json.push_str(&format!(
            "  \"{name}\": {{\"setup_writes\": {}, \"update_writes\": {}, \"skipped_writes\": {}, \"rebuilds_avoided\": {}, \"energy_mj\": {:.3}, \"seconds\": {:.6}}},\n",
            c.setup, c.update, c.skipped, c.reuse, c.energy_j * 1e3, c.secs
        ));
    }
    json.push_str(&format!(
        "  \"update_write_reduction\": {update_reduction:.4},\n"
    ));
    json.push_str(&format!(
        "  \"total_write_reduction\": {total_reduction:.4},\n"
    ));
    json.push_str(&format!("  \"energy_reduction\": {energy_reduction:.4},\n"));
    json.push_str(&format!("  \"cells_written\": {cells_written},\n"));
    json.push_str(&format!(
        "  \"baseline_cells_written\": {BASELINE_CELLS_WRITTEN},\n"
    ));
    json.push_str(&format!("  \"within_budget\": {within_budget},\n"));
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_incremental.json");
    std::fs::write(&path, &json).expect("write BENCH_incremental.json");
    println!("wrote {}", path.display());

    assert!(
        reduction_ok,
        "delta programming must cut post-setup writes by >= 50% (got {:.1}%)",
        update_reduction * 100.0
    );
    assert!(
        within_budget,
        "cells written ({cells_written}) exceeds baseline ({BASELINE_CELLS_WRITTEN}) by more than 10%"
    );
}
