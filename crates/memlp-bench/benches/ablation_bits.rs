//! **Ablation A1** — converter resolution. The paper fixes all voltage I/O
//! at 8 bits (§4.1); this ablation sweeps the ADC/DAC width and shows
//! where the accuracy saturates, justifying that design point.

use memlp_bench::{run_trials, Stats, Table};
use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_lp::generator::RandomLp;
use memlp_solvers::{LpSolver, NormalEqPdip};

fn main() {
    let m = 64;
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Ablation: ADC/DAC bit width at m = {m}, 10% variation, {trials} trials");

    let mut t = Table::new(
        "Accuracy vs converter resolution (Algorithm 1, 10% variation)",
        &["bits", "mean err %", "max err %", "success"],
    );
    for bits in [4u32, 6, 8, 10, 12, 16] {
        let outcomes = run_trials(trials, |trial| {
            let seed = 4000 + trial as u64;
            let lp = RandomLp::paper(m, seed).feasible();
            let reference = NormalEqPdip::default().solve(&lp);
            let cfg = CrossbarConfig {
                adc_bits: bits,
                dac_bits: bits,
                ..CrossbarConfig::paper_default()
                    .with_variation(10.0)
                    .with_seed(seed)
            };
            let r = CrossbarPdipSolver::new(cfg, CrossbarSolverOptions::default()).solve(&lp);
            if r.solution.status.is_optimal() {
                Some(
                    (r.solution.objective - reference.objective).abs()
                        / (1.0 + reference.objective.abs()),
                )
            } else {
                None
            }
        });
        let ok = outcomes.iter().filter(|o| o.is_some()).count();
        let errs: Stats = outcomes.into_iter().flatten().collect();
        t.row(vec![
            bits.to_string(),
            format!("{:.3}", errs.mean() * 100.0),
            format!("{:.3}", errs.max() * 100.0),
            format!("{ok}/{trials}"),
        ]);
    }
    t.finish("ablation_bits");
    println!("\nExpected shape: error falls steeply to ~8 bits, then saturates at the");
    println!("process-variation floor — the paper's 8-bit choice is the knee.");
}
