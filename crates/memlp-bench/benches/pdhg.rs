//! First-order backend study: PDIP vs PDHG past the dense-core wall
//! (DESIGN.md §17).
//!
//! Three measurements, one JSON artifact (`BENCH_pdhg.json`):
//!
//! 1. **Crossover** — every memlp-lp domain at m ∈ {128, 512}, digital
//!    NormalEqPdip vs digital PdhgSolver at a *shared* KKT tolerance
//!    (1e-4 on primal/dual/gap, [`PdhgOptions::from_pdip`] so a verdict
//!    means the same thing on both): wall-clock, iterations, and the
//!    PDHG MVM count. Second-order methods win while factorizations are
//!    cheap; the table records where the balance tips.
//! 2. **Headline** — assignment at k = 256 agents (m = 512, n = 65536).
//!    The (n+m)² dense Newton core would need ~35 GB, which
//!    [`DENSE_CORE_LIMIT_BYTES`] refuses; the PDHG working set is the
//!    CSR matrix plus O(n + m) iterate vectors. The CI gate asserts the
//!    instance is solved to the shared tolerance inside a memory budget
//!    no dense path can meet.
//! 3. **Analog agreement** — for every domain at the feasible cell size,
//!    the crossbar PDHG solver (paper-default 8-bit converters, 5%
//!    variation) must return the same verdict as the digital loop — by
//!    construction both run [`memlp_solvers::pdhg::solve_with_operator`];
//!    only the operator differs — with write/energy accounting showing
//!    the run phase is MVM-only (zero update writes).

use std::time::Instant;

use memlp_bench::fmt_time;
use memlp_core::{CrossbarPdhgOptions, CrossbarPdhgSolver, DENSE_CORE_LIMIT_BYTES};
use memlp_crossbar::CrossbarConfig;
use memlp_device::CostParams;
use memlp_lp::domains::{
    assignment_lp, max_flow_lp, production_schedule_lp, transportation_lp, AssignmentProblem,
    MaxFlowNetwork, ProductionPlan, TransportationProblem,
};
use memlp_lp::{LpProblem, LpStatus};
use memlp_solvers::pdhg::{PdhgOptions, PdhgSolver};
use memlp_solvers::{Budget, LpSolver, NormalEqPdip, PdipOptions, SolvePath};

/// Shared KKT tolerance for the crossover and headline rows.
const TOL: f64 = 1e-4;

fn shared_pdip_options() -> PdipOptions {
    PdipOptions {
        eps_primal: TOL,
        eps_dual: TOL,
        eps_gap: TOL,
        path: SolvePath::Auto,
        ..PdipOptions::default()
    }
}

/// Domain instances sized to `m_target` constraints (same constructors
/// and seed as the sparse-Newton study, so rows are comparable across
/// benches).
fn build(domain: &'static str, m_target: usize) -> LpProblem {
    let lp = match (domain, m_target) {
        ("transport", 128) => transportation_lp(&TransportationProblem::random(4, 124, 21)),
        ("transport", 512) => transportation_lp(&TransportationProblem::random(4, 508, 21)),
        ("routing", 128) => max_flow_lp(&MaxFlowNetwork::random_layered(6, 6, 21)),
        ("routing", 512) => max_flow_lp(&MaxFlowNetwork::random_layered(12, 12, 21)),
        ("scheduling", 128) => production_schedule_lp(&ProductionPlan::random(8, 120, 21)),
        ("scheduling", 512) => production_schedule_lp(&ProductionPlan::random(8, 504, 21)),
        ("assignment", 128) => assignment_lp(&AssignmentProblem::random(64, 21)),
        ("assignment", 512) => assignment_lp(&AssignmentProblem::random(256, 21)),
        _ => unreachable!("unknown bench row"),
    };
    lp.expect("valid domain instance")
}

struct SolveRecord {
    secs: f64,
    iterations: usize,
    status: LpStatus,
    /// PDHG only: analog-equivalent MVM count (digital spmv calls).
    mvms: Option<u64>,
    restarts: Option<usize>,
}

fn run_pdip(lp: &LpProblem) -> SolveRecord {
    let solver = NormalEqPdip::new(shared_pdip_options());
    let t = Instant::now();
    let sol = solver.solve(lp);
    SolveRecord {
        secs: t.elapsed().as_secs_f64(),
        iterations: sol.iterations,
        status: sol.status,
        mvms: None,
        restarts: None,
    }
}

fn run_pdhg(lp: &LpProblem) -> SolveRecord {
    run_pdhg_with(lp, true)
}

fn run_pdhg_with(lp: &LpProblem, equilibrate: bool) -> SolveRecord {
    let opts = PdhgOptions {
        equilibrate,
        ..PdhgOptions::from_pdip(&shared_pdip_options())
    };
    let solver = PdhgSolver::new(opts);
    let t = Instant::now();
    let out = solver.solve_full(lp, Budget::none(), None);
    SolveRecord {
        secs: t.elapsed().as_secs_f64(),
        iterations: out.stats.iterations,
        status: out.solution.status,
        mvms: Some(out.stats.mvms),
        restarts: Some(out.stats.restarts),
    }
}

fn fmt_record(r: &SolveRecord) -> String {
    let mut s = format!(
        "{{\"seconds\": {:.6}, \"iterations\": {}, \"status\": \"{}\"",
        r.secs, r.iterations, r.status
    );
    if let Some(m) = r.mvms {
        s.push_str(&format!(", \"mvms\": {m}"));
    }
    if let Some(rs) = r.restarts {
        s.push_str(&format!(", \"restarts\": {rs}"));
    }
    s.push('}');
    s
}

struct AnalogRow {
    domain: &'static str,
    m: usize,
    n: usize,
    verdict_analog: LpStatus,
    verdict_digital: LpStatus,
    agree: bool,
    mvms: u64,
    setup_writes: u64,
    update_writes: u64,
    energy_mj: f64,
}

/// Runs the analog crossbar PDHG and the digital loop at the *analog*
/// default tolerances on the same instance; verdicts must match.
fn analog_row(domain: &'static str, lp: &LpProblem) -> AnalogRow {
    let opts = CrossbarPdhgOptions::default();
    let analog = CrossbarPdhgSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(21),
        opts,
    )
    .solve(lp);
    let digital = PdhgSolver::new(opts.pdhg).solve(lp);
    let c = analog.ledger.counts();
    AnalogRow {
        domain,
        m: lp.num_constraints(),
        n: lp.num_vars(),
        verdict_analog: analog.solution.status,
        verdict_digital: digital.status,
        agree: analog.solution.status == digital.status,
        mvms: c.mvm_ops,
        setup_writes: c.setup_writes,
        update_writes: c.update_writes,
        energy_mj: analog.ledger.energy_j(&CostParams::default()) * 1e3,
    }
}

/// The digital PDHG working set: the CSR matrix (values plus column
/// indices plus row pointers) and the O(n + m) iterate/residual vectors
/// the loop holds (x, x̄, previous x, restart window sums and best
/// iterates on both sides, cached products).
fn pdhg_workset_bytes(lp: &LpProblem) -> u64 {
    let nnz = lp.sparse_a().nnz() as u64;
    let (n, m) = (lp.num_vars() as u64, lp.num_constraints() as u64);
    let csr = nnz * 16 + (m + 1) * 8;
    let vectors = 8 * (8 * n + 8 * m);
    csr + vectors
}

fn main() {
    println!("first-order backend: digital PDIP vs PDHG at shared tolerance {TOL:.0e}");
    println!();
    println!(
        "{:>11} {:>5} {:>6} {:>12} {:>7} {:>12} {:>8} {:>9} {:>9}",
        "domain", "m", "n", "pdip", "iters", "pdhg", "iters", "mvms", "winner"
    );

    let mut crossover = String::new();
    let mut equilibration = String::new();
    let mut all_verdicts_ok = true;
    let domains = ["transport", "routing", "scheduling", "assignment"];
    let mut first = true;
    for &m_target in &[128usize, 512] {
        for domain in domains {
            let lp = build(domain, m_target);
            let pdip = run_pdip(&lp);
            let pdhg = run_pdhg(&lp);
            // Equilibration study: the same loop with the pre-step off.
            // Positive delta = iterations the row scaling saves.
            let raw = run_pdhg_with(&lp, false);
            if !equilibration.is_empty() {
                equilibration.push_str(",\n");
            }
            equilibration.push_str(&format!(
                "    {{\"domain\": \"{domain}\", \"m_target\": {m_target}, \
                 \"iterations_equilibrated\": {}, \"status_equilibrated\": \"{}\", \
                 \"iterations_raw\": {}, \"status_raw\": \"{}\", \"iters_delta\": {}}}",
                pdhg.iterations,
                pdhg.status,
                raw.iterations,
                raw.status,
                raw.iterations as i64 - pdhg.iterations as i64,
            ));
            // Both solvers must deliver at the shared tolerance for the
            // comparison to mean anything.
            all_verdicts_ok &= pdip.status == LpStatus::Optimal;
            all_verdicts_ok &= pdhg.status == LpStatus::Optimal;
            let winner = if pdip.secs <= pdhg.secs {
                "pdip"
            } else {
                "pdhg"
            };
            println!(
                "{domain:>11} {:>5} {:>6} {:>12} {:>7} {:>12} {:>8} {:>9} {winner:>9}",
                lp.num_constraints(),
                lp.num_vars(),
                fmt_time(pdip.secs),
                pdip.iterations,
                fmt_time(pdhg.secs),
                pdhg.iterations,
                pdhg.mvms.unwrap_or(0),
            );
            if !first {
                crossover.push_str(",\n");
            }
            first = false;
            crossover.push_str(&format!(
                "    {{\"domain\": \"{domain}\", \"m_target\": {m_target}, \"m\": {}, \
                 \"n\": {}, \"nnz\": {}, \"pdip\": {}, \"pdhg\": {}, \"winner\": \"{winner}\"}}",
                lp.num_constraints(),
                lp.num_vars(),
                lp.sparse_a().nnz(),
                fmt_record(&pdip),
                fmt_record(&pdhg),
            ));
        }
    }

    // --- Headline: assignment at k = 256, past the dense-core wall.
    let lp = build("assignment", 512);
    let dense_core_dim = (lp.num_vars() + lp.num_constraints()) as u64;
    let dense_core_bytes = 8 * dense_core_dim * dense_core_dim;
    let workset = pdhg_workset_bytes(&lp);
    let headline = run_pdhg(&lp);
    let memory_gate = workset < DENSE_CORE_LIMIT_BYTES && dense_core_bytes > DENSE_CORE_LIMIT_BYTES;
    let headline_gate = memory_gate && headline.status == LpStatus::Optimal;
    println!();
    println!(
        "headline assignment@k=256: {} in {} ({} iterations, {} MVMs)",
        headline.status,
        fmt_time(headline.secs),
        headline.iterations,
        headline.mvms.unwrap_or(0)
    );
    println!(
        "memory: pdhg workset {:.1} MB < limit {:.1} GB < dense core {:.1} GB",
        workset as f64 / 1e6,
        DENSE_CORE_LIMIT_BYTES as f64 / 1e9,
        dense_core_bytes as f64 / 1e9
    );

    // --- Analog verdict agreement at the feasible cell size.
    println!();
    println!(
        "{:>11} {:>5} {:>6} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "domain", "m", "n", "analog", "digital", "mvms", "writes", "energy mJ"
    );
    let mut analog_rows = Vec::new();
    let mut all_agree = true;
    let mut run_writes_free = true;
    for domain in domains {
        let lp = build(domain, 128);
        let row = analog_row(domain, &lp);
        println!(
            "{:>11} {:>5} {:>6} {:>10} {:>10} {:>8} {:>8} {:>10.3}",
            row.domain,
            row.m,
            row.n,
            row.verdict_analog.to_string(),
            row.verdict_digital.to_string(),
            row.mvms,
            row.setup_writes,
            row.energy_mj
        );
        all_agree &= row.agree;
        run_writes_free &= row.update_writes == 0;
        analog_rows.push(row);
    }

    let gate_pass = all_verdicts_ok && headline_gate && all_agree && run_writes_free;

    // --- BENCH_pdhg.json at the repository root.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"pdhg\",\n");
    json.push_str(
        "  \"suite\": \"first-order backend: PDIP-vs-PDHG crossover, dense-wall headline, \
         analog verdict agreement\",\n",
    );
    json.push_str(&format!("  \"shared_tolerance\": {TOL:e},\n"));
    json.push_str("  \"crossover\": [\n");
    json.push_str(&crossover);
    json.push_str("\n  ],\n");
    json.push_str("  \"equilibration\": [\n");
    json.push_str(&equilibration);
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"headline\": {{\"domain\": \"assignment\", \"agents\": 256, \"m\": {}, \"n\": {}, \
         \"result\": {}, \"pdhg_workset_bytes\": {}, \"dense_core_bytes\": {}, \
         \"dense_core_limit_bytes\": {}, \"memory_gate\": {}, \
         \"note\": \"workset = CSR(A) + O(n+m) iterate vectors; the dense Newton core is \
         refused by the allocation guard, so no dense path can run this instance\"}},\n",
        lp.num_constraints(),
        lp.num_vars(),
        fmt_record(&headline),
        workset,
        dense_core_bytes,
        DENSE_CORE_LIMIT_BYTES,
        memory_gate,
    ));
    json.push_str("  \"analog_agreement\": [\n");
    for (i, r) in analog_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"domain\": \"{}\", \"m\": {}, \"n\": {}, \"verdict_analog\": \"{}\", \
             \"verdict_digital\": \"{}\", \"agree\": {}, \"mvms\": {}, \"setup_writes\": {}, \
             \"update_writes\": {}, \"energy_mj\": {:.3}}}{}\n",
            r.domain,
            r.m,
            r.n,
            r.verdict_analog,
            r.verdict_digital,
            r.agree,
            r.mvms,
            r.setup_writes,
            r.update_writes,
            r.energy_mj,
            if i + 1 < analog_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_pdhg.json");
    std::fs::write(&path, &json).expect("write BENCH_pdhg.json");
    println!();
    println!("wrote {}", path.display());

    assert!(
        gate_pass,
        "pdhg gate failed: verdicts_ok={all_verdicts_ok} headline={headline_gate} \
         agree={all_agree} writes_free={run_writes_free}"
    );
}
