//! Sparse-vs-dense Newton factorization study on the digital side of
//! Algorithm 1 (DESIGN.md §13).
//!
//! For each memlp-lp domain at m ∈ {128, 512} the bench programs one
//! `AugmentedSystem` on ideal hardware, assembles a real PDIP right-hand
//! side, then times the per-iteration core solve under both
//! `SolvePath::Dense` (flat copy + partial-pivot LU of the (n+m) core) and
//! `SolvePath::Sparse` (diagonal scatter + symbolic-reuse refactor of the
//! Schur core). The analog work is identical on both paths, so the ratio
//! is pure digital-controller speedup.
//!
//! Emits `BENCH_sparse.json` at the repository root (hand-rolled JSON — no
//! serde in the offline dependency set) and *asserts* the ≥ 5× gate on the
//! routing and transport rows at m = 512. The sparse warmup call (symbolic
//! analysis + first refactor) is excluded, exactly as a solver run
//! amortizes it over iterations 2..k.

use std::time::Instant;

use memlp_bench::fmt_time;
use memlp_core::{AugmentedSystem, FactorStats, HwContext};
use memlp_crossbar::CrossbarConfig;
use memlp_lp::domains::{
    assignment_lp, max_flow_lp, production_schedule_lp, transportation_lp, AssignmentProblem,
    MaxFlowNetwork, ProductionPlan, TransportationProblem,
};
use memlp_lp::LpProblem;
use memlp_solvers::pdip::{PdipOptions, PdipState};
use memlp_solvers::SolvePath;

/// Per-iteration digital speedup the gated rows must clear.
const GATE_MIN_SPEEDUP: f64 = 5.0;
/// Rows gated: (domain, target m).
const GATED: [(&str, usize); 2] = [("routing", 512), ("transport", 512)];

struct Timing {
    /// Median wall-clock of one core solve, seconds.
    secs: f64,
    /// Factorization flops per iteration (exact for sparse, the 2/3·N³
    /// model for dense).
    flops: u64,
    /// Stored factor entries (|L|+|U|+diagonal for sparse, N² for dense).
    factor_nnz: u64,
}

struct Row {
    domain: &'static str,
    m_target: usize,
    m: usize,
    n: usize,
    density: f64,
    dense: Option<Timing>,
    sparse: Option<Timing>,
    note: Option<&'static str>,
}

/// Domain instances sized so the LP has exactly `m_target` constraints
/// (routing lands within ±2%: its row count is structural).
fn build(domain: &'static str, m_target: usize) -> LpProblem {
    let lp = match (domain, m_target) {
        ("transport", 128) => transportation_lp(&TransportationProblem::random(4, 124, 21)),
        ("transport", 512) => transportation_lp(&TransportationProblem::random(4, 508, 21)),
        ("routing", 128) => max_flow_lp(&MaxFlowNetwork::random_layered(6, 6, 21)),
        ("routing", 512) => max_flow_lp(&MaxFlowNetwork::random_layered(12, 12, 21)),
        ("scheduling", 128) => production_schedule_lp(&ProductionPlan::random(8, 120, 21)),
        ("scheduling", 512) => production_schedule_lp(&ProductionPlan::random(8, 504, 21)),
        ("assignment", 128) => assignment_lp(&AssignmentProblem::random(64, 21)),
        // k = 256 agents give m = 512 but n = k² = 65536: the (n+m)² dense
        // core buffer alone would be ~35 GB, which the dense path now
        // refuses via `DENSE_CORE_LIMIT_BYTES`. The sparse core fits, so
        // the row is measured sparse-only with the dense column null.
        ("assignment", 512) => assignment_lp(&AssignmentProblem::random(256, 21)),
        _ => unreachable!("unknown bench row"),
    };
    lp.expect("valid domain instance")
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Times the per-iteration core solve on `path`. Programming, rhs
/// assembly, and the sparse symbolic analysis happen before the clock
/// starts; every timed call does the full per-iteration digital work
/// (diagonal updates, factorization, triangular solves, back-substitution).
fn measure(lp: &LpProblem, path: SolvePath) -> Option<Timing> {
    let mut hw = HwContext::new(CrossbarConfig::ideal().with_seed(11));
    let opts = PdipOptions::default();
    let state = PdipState::new(lp, &opts);
    let mut sys = AugmentedSystem::program(lp, &state, &mut hw);
    sys.set_solve_path(path);
    let mu = state.mu(opts.delta);
    let s = sys.s_vector(&state);
    let ms = sys.mvm(&s, &mut hw);
    let constant = sys.rhs_constant(lp, mu);
    let r = sys.assemble_rhs(&constant, &ms);

    sys.solve(&r, &mut hw).ok()?; // warmup: sparse symbolic analysis amortizes here
    let core = lp.num_vars() + lp.num_constraints();
    let reps = if core >= 2000 { 2 } else { 5 };
    let before = FactorStats::from_ledger(hw.ledger());
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        sys.solve(&r, &mut hw).ok()?;
        times.push(t.elapsed().as_secs_f64());
    }
    let after = FactorStats::from_ledger(hw.ledger());
    let done = after.factorizations - before.factorizations;
    assert_eq!(
        done, reps as u64,
        "every timed rep must factor exactly once"
    );
    Some(Timing {
        secs: median(times),
        flops: (after.flops - before.flops) / done,
        factor_nnz: (after.factor_nnz - before.factor_nnz) / done,
    })
}

fn fmt_timing(t: &Option<Timing>) -> String {
    match t {
        Some(t) => format!(
            "{{\"seconds\": {:.6}, \"flops\": {}, \"factor_nnz\": {}}}",
            t.secs, t.flops, t.factor_nnz
        ),
        None => "null".into(),
    }
}

fn main() {
    println!("sparse Newton path: per-iteration core solve, dense vs sparse");
    println!();
    println!(
        "{:>11} {:>5} {:>5} {:>6} {:>8} {:>12} {:>12} {:>9}",
        "domain", "m", "n", "dens", "", "dense", "sparse", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &m_target in &[128usize, 512] {
        for domain in ["transport", "routing", "scheduling", "assignment"] {
            let lp = build(domain, m_target);
            let dense = measure(&lp, SolvePath::Dense);
            let sparse = measure(&lp, SolvePath::Sparse).expect("sparse core solve");
            let note = match &dense {
                Some(_) => None,
                None => {
                    // The only admissible dense refusal is the allocation
                    // guard on the one oversized core; anything else would
                    // be a real regression the bench must not paper over.
                    assert_eq!(
                        (domain, m_target),
                        ("assignment", 512),
                        "unexpected dense-path failure"
                    );
                    Some(
                        "dense path refused by DENSE_CORE_LIMIT_BYTES: the (n+m)^2 \
                         core buffer would be ~35 GB; sparse timing is real",
                    )
                }
            };
            let (dense_col, speedup_col) = match &dense {
                Some(d) => (fmt_time(d.secs), format!("{:>8.1}x", d.secs / sparse.secs)),
                None => ("refused".into(), format!("{:>9}", "-")),
            };
            println!(
                "{domain:>11} {:>5} {:>5} {:>6.4} {:>8} {:>12} {:>12} {speedup_col}",
                lp.num_constraints(),
                lp.num_vars(),
                lp.density(),
                "",
                dense_col,
                fmt_time(sparse.secs),
            );
            rows.push(Row {
                domain,
                m_target,
                m: lp.num_constraints(),
                n: lp.num_vars(),
                density: lp.density(),
                dense,
                sparse: Some(sparse),
                note,
            });
        }
    }

    // --- BENCH_sparse.json at the repository root.
    let mut gate_pass = true;
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sparse_newton\",\n");
    json.push_str(
        "  \"suite\": \"memlp-lp domains, per-iteration core solve on ideal hardware\",\n",
    );
    json.push_str(&format!("  \"gate_min_speedup\": {GATE_MIN_SPEEDUP},\n"));
    json.push_str("  \"gate_rows\": [\"routing@512\", \"transport@512\"],\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = match (&r.dense, &r.sparse) {
            (Some(d), Some(s)) => format!("{:.2}", d.secs / s.secs),
            _ => "null".into(),
        };
        let flops_ratio = match (&r.dense, &r.sparse) {
            (Some(d), Some(s)) if s.flops > 0 => {
                format!("{:.2}", d.flops as f64 / s.flops as f64)
            }
            _ => "null".into(),
        };
        json.push_str(&format!(
            "    {{\"domain\": \"{}\", \"m_target\": {}, \"m\": {}, \"n\": {}, \
             \"density\": {:.5}, \"dense\": {}, \"sparse\": {}, \
             \"speedup_time\": {}, \"speedup_flops\": {}, \"note\": {}}}{}\n",
            r.domain,
            r.m_target,
            r.m,
            r.n,
            r.density,
            fmt_timing(&r.dense),
            fmt_timing(&r.sparse),
            speedup,
            flops_ratio,
            match r.note {
                Some(n) => format!("\"{n}\""),
                None => "null".into(),
            },
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    for &(domain, m_target) in &GATED {
        let row = rows
            .iter()
            .find(|r| r.domain == domain && r.m_target == m_target)
            .expect("gated row present");
        let (Some(d), Some(s)) = (&row.dense, &row.sparse) else {
            panic!("gated row {domain}@{m_target} was skipped");
        };
        let speedup = d.secs / s.secs;
        println!("gate {domain}@{m_target}: {speedup:.1}x (need >= {GATE_MIN_SPEEDUP}x)");
        if speedup < GATE_MIN_SPEEDUP {
            gate_pass = false;
        }
    }
    json.push_str(&format!("  \"gate_pass\": {gate_pass}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_sparse.json");
    std::fs::write(&path, &json).expect("write BENCH_sparse.json");
    println!("wrote {}", path.display());

    assert!(
        gate_pass,
        "sparse Newton gate failed: a gated row fell below {GATE_MIN_SPEEDUP}x"
    );
}
