//! **Ablation A6** — simulation fidelity. The functional model perturbs
//! logical coefficients (the paper's Eqn 18 exactly); the circuit model
//! adds the physical non-idealities the paper abstracts away: `g_off`
//! leakage through "zero" cells and the Eqn-5 output divider. This
//! ablation quantifies the gap on raw crossbar operations.

use memlp_bench::{run_trials, Stats, Table};
use memlp_crossbar::{Crossbar, CrossbarConfig, ReadoutMode};
use memlp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    println!("Ablation: functional vs circuit fidelity on raw crossbar ops ({trials} trials)");

    let mut t = Table::new(
        "MVM / solve max relative error vs exact math (10% variation, 8-bit I/O)",
        &["n", "fidelity", "readout", "mvm err %", "solve err %"],
    );
    for &n in &[8usize, 16, 32] {
        for (fname, circuit) in [("functional", false), ("circuit", true)] {
            for (rname, readout) in [
                ("calibrated", ReadoutMode::Calibrated),
                ("raw-divider", ReadoutMode::RawDivider),
            ] {
                if !circuit && readout == ReadoutMode::RawDivider {
                    continue; // read-out mode only matters at circuit fidelity
                }
                let errs: Vec<(f64, f64)> = run_trials(trials, |trial| {
                    let seed = 8000 + trial as u64;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let a = Matrix::from_fn(n, n, |i, j| {
                        let v: f64 = rng.random_range(0.05..1.0);
                        v + if i == j { 3.0 } else { 0.0 }
                    });
                    let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
                    let b: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..2.0)).collect();
                    let mut cfg = CrossbarConfig::paper_default()
                        .with_variation(10.0)
                        .with_seed(seed);
                    cfg.readout = readout;
                    if circuit {
                        cfg = cfg.circuit();
                    }
                    let mut xb = Crossbar::new(n, cfg).expect("fits");
                    xb.program(&a).expect("non-negative");

                    let y = xb.mvm(&x).expect("shapes");
                    let exact = a.matvec(&x);
                    let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                    let mvm_err = y
                        .iter()
                        .zip(&exact)
                        .map(|(g, w)| (g - w).abs())
                        .fold(0.0f64, f64::max)
                        / scale;

                    let xs = xb.solve(&b).expect("non-singular");
                    let back = a.matvec(&xs);
                    let bscale = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                    let solve_err = back
                        .iter()
                        .zip(&b)
                        .map(|(g, w)| (g - w).abs())
                        .fold(0.0f64, f64::max)
                        / bscale;
                    (mvm_err, solve_err)
                });
                let mvm: Stats = errs.iter().map(|(a, _)| *a).collect();
                let solve: Stats = errs.iter().map(|(_, b)| *b).collect();
                t.row(vec![
                    n.to_string(),
                    fname.into(),
                    if circuit { rname.into() } else { "-".into() },
                    format!("{:.3}", mvm.mean() * 100.0),
                    format!("{:.3}", solve.mean() * 100.0),
                ]);
            }
        }
    }
    t.finish("ablation_fidelity");
    println!("\nExpected shape: circuit fidelity with calibrated read-out tracks the");
    println!("functional model; the raw-divider read-out of [8] pays a visible penalty;");
    println!("all gaps grow with array size as g_off leakage accumulates per column.");
}
