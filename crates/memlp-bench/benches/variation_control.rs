//! **§4.3 control experiment** — the paper's "surprising result"
//! verification: perturbing the constraint matrix of the *software* solver
//! by the same variation model produces errors of the same magnitude as
//! the crossbar solver's, i.e. linear programs themselves are insensitive
//! to bounded coefficient noise, and more so at larger sizes.

use memlp_bench::{run_trials, Stats, Sweep, Table};
use memlp_device::VariationModel;
use memlp_linalg::Matrix;
use memlp_lp::generator::RandomLp;
use memlp_lp::LpProblem;
use memlp_solvers::{LpSolver, NormalEqPdip};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Applies Eqn 18 to a whole LP digitally (A, b, c all perturbed).
fn perturb_lp(lp: &LpProblem, var_pct: f64, seed: u64) -> LpProblem {
    let var = VariationModel::uniform_pct(var_pct);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::from_fn(lp.num_constraints(), lp.num_vars(), |i, j| {
        var.perturb(lp.a()[(i, j)], &mut rng)
    });
    let b = lp.b().iter().map(|&v| var.perturb(v, &mut rng)).collect();
    let c = lp.c().iter().map(|&v| var.perturb(v, &mut rng)).collect();
    LpProblem::new(a, b, c).expect("perturbation preserves shapes")
}

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "§4.3 control: software solver on variation-perturbed problems — sizes {:?}",
        sweep.sizes
    );

    let mut t = Table::new(
        "Software (f64) on Eqn-18-perturbed problems: relative objective error",
        &["m", "var %", "mean err %", "max err %"],
    );
    for &m in &sweep.sizes {
        for &var in &sweep.variations {
            if var == 0.0 {
                continue;
            }
            let errs: Stats = run_trials(sweep.trials, |trial| {
                let seed = 3000 + m as u64 * 7 + trial as u64;
                let lp = RandomLp::paper(m, seed).feasible();
                let clean = NormalEqPdip::default().solve(&lp);
                let noisy_lp = perturb_lp(&lp, var, seed ^ 0xA11CE);
                let noisy = NormalEqPdip::default().solve(&noisy_lp);
                if clean.status.is_optimal() && noisy.status.is_optimal() {
                    (noisy.objective - clean.objective).abs() / (1.0 + clean.objective.abs())
                } else {
                    f64::NAN
                }
            })
            .into_iter()
            .collect();
            t.row(vec![
                m.to_string(),
                format!("{var:.0}"),
                format!("{:.3}", errs.mean() * 100.0),
                format!("{:.3}", errs.max() * 100.0),
            ]);
        }
    }
    t.finish("variation_control");

    println!(
        "\nConclusion check (paper §4.3): these software-side errors should be of the same\n\
         magnitude as the crossbar solver's in Fig 5(a) — LPs are largely insensitive to\n\
         bounded coefficient noise, increasingly so at larger sizes."
    );
}
