//! **§4.2/§4.3 iteration study** — the iteration counts every latency and
//! energy estimate in the paper is built from: iterations to converge on
//! feasible problems and iterations to detect infeasibility, vs problem
//! size and variation level.

use memlp_bench::experiments::{feasible_grid, infeasible_grid, SolverKind};
use memlp_bench::{Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Iteration study — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );

    let mut t = Table::new(
        "Iterations to converge / to detect infeasibility",
        &[
            "solver",
            "workload",
            "m",
            "var %",
            "mean iters",
            "min",
            "max",
            "success",
        ],
    );
    for kind in [SolverKind::Alg1, SolverKind::Alg2] {
        let feas = feasible_grid(kind, &sweep);
        for p in &feas {
            t.row(vec![
                kind.label().into(),
                "feasible".into(),
                p.m.to_string(),
                format!("{:.0}", p.var_pct),
                format!("{:.1}", p.iterations.mean()),
                format!("{:.0}", p.iterations.min()),
                format!("{:.0}", p.iterations.max()),
                format!("{:.0}%", p.success_rate * 100.0),
            ]);
        }
        // The infeasible sweep is limited to two variation levels to keep
        // the default run fast; MEMLP_FULL expands the trial count.
        let inf_sweep = sweep.clone().with_variations(vec![0.0, 20.0]);
        let inf = infeasible_grid(kind, &inf_sweep);
        for p in &inf {
            t.row(vec![
                kind.label().into(),
                "infeasible".into(),
                p.m.to_string(),
                format!("{:.0}", p.var_pct),
                format!("{:.1}", p.iterations.mean()),
                format!("{:.0}", p.iterations.min()),
                format!("{:.0}", p.iterations.max()),
                format!("{:.0}%", p.success_rate * 100.0),
            ]);
        }
    }
    t.finish("iterations_table");
}
