//! **Figure 6(b)** — estimated computation latency of the large-scale
//! solver (Algorithm 2) vs the `linprog` stand-in.
//!
//! Paper result: < 80 ms at m = 1024 even at 20% variation, and — unlike
//! Algorithm 1 — latency roughly flat in the variation level thanks to the
//! constant step length.

use memlp_bench::experiments::{feasible_grid, software_latency, SolverKind};
use memlp_bench::{fmt_time, Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Fig 6(b): Algorithm 2 estimated latency — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );
    let grid = feasible_grid(SolverKind::Alg2, &sweep);

    let mut t = Table::new(
        "Fig 6(b): estimated latency, Algorithm 2 (large-scale) vs software",
        &[
            "m",
            "var %",
            "crossbar (est)",
            "linprog-sub (wall)",
            "speedup",
        ],
    );
    for &m in &sweep.sizes {
        let (normal, _) = software_latency(m, sweep.trials.min(3), 0);
        for p in grid.iter().filter(|p| p.m == m) {
            t.row(vec![
                m.to_string(),
                format!("{:.0}", p.var_pct),
                fmt_time(p.hw_run_s.mean()),
                fmt_time(normal.mean()),
                format!("{:.1}x", normal.mean() / p.hw_run_s.mean()),
            ]);
        }
    }
    t.finish("fig6b_latency_large");
}
