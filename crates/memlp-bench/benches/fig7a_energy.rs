//! **Figure 7(a)** — estimated energy consumption of the crossbar solver
//! (Algorithm 1) vs the CPU baselines.
//!
//! Crossbar energy = ledger dynamic energy (writes, conversions, settle
//! currents) + static peripheral power × run time. CPU energy = measured
//! wall-clock × 35 W (the paper's implied constant). Paper result at
//! m = 1024: 0.9–12.1 J (by variation) vs 218.1 J for `linprog` (≥ 24×).

use memlp_bench::experiments::{feasible_grid, software_latency, SolverKind};
use memlp_bench::{cpu_energy_j, fmt_energy, Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Fig 7(a): Algorithm 1 estimated energy — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );
    let grid = feasible_grid(SolverKind::Alg1, &sweep);

    let mut t = Table::new(
        "Fig 7(a): estimated energy, Algorithm 1 vs software (35 W CPU model)",
        &["m", "var %", "crossbar (est)", "linprog-sub (cpu)", "ratio"],
    );
    for &m in &sweep.sizes {
        let (normal, _) = software_latency(m, sweep.trials.min(3), 0);
        let cpu = cpu_energy_j(normal.mean());
        for p in grid.iter().filter(|p| p.m == m) {
            t.row(vec![
                m.to_string(),
                format!("{:.0}", p.var_pct),
                fmt_energy(p.hw_energy_j.mean()),
                fmt_energy(cpu),
                format!("{:.1}x", cpu / p.hw_energy_j.mean()),
            ]);
        }
    }
    t.finish("fig7a_energy");

    println!("\nShape check: energy grows with variation (write-verify + iterations):");
    for &m in &sweep.sizes {
        let at = |v: f64| {
            grid.iter()
                .find(|p| p.m == m && p.var_pct == v)
                .map(|p| p.hw_energy_j.mean())
                .unwrap_or(f64::NAN)
        };
        println!(
            "  m={m:>5}: var0={} var20={}",
            fmt_energy(at(0.0)),
            fmt_energy(at(20.0))
        );
    }
}
