//! **Ablation A5** — variation distribution. The paper models process
//! variation as uniform with a maximum range (§4.1) because the true
//! distribution is "too complex to be expressed by a mathematical
//! closed-form solution". How sensitive are the results to that choice?
//! This ablation re-runs the accuracy experiment with a Gaussian whose 3σ
//! equals the same maximum.

use memlp_bench::{run_trials, Stats, Table};
use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_device::VariationModel;
use memlp_lp::generator::RandomLp;
use memlp_solvers::{LpSolver, NormalEqPdip};

fn main() {
    let m = 64;
    let trials = std::env::var("MEMLP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Ablation: variation distribution at m = {m}, {trials} trials");

    let mut t = Table::new(
        "Uniform vs Gaussian (3σ = max) process variation — Algorithm 1 accuracy",
        &[
            "max var %",
            "distribution",
            "mean err %",
            "max err %",
            "success",
        ],
    );
    for var in [5.0, 10.0, 20.0] {
        for (name, model) in [
            ("uniform", VariationModel::uniform_pct(var)),
            ("gaussian", VariationModel::gaussian_pct(var)),
        ] {
            let outcomes = run_trials(trials, |trial| {
                let seed = 7000 + trial as u64;
                let lp = RandomLp::paper(m, seed).feasible();
                let reference = NormalEqPdip::default().solve(&lp);
                let cfg = CrossbarConfig {
                    variation: model,
                    ..CrossbarConfig::paper_default().with_seed(seed)
                };
                let r = CrossbarPdipSolver::new(cfg, CrossbarSolverOptions::default()).solve(&lp);
                if r.solution.status.is_optimal() {
                    Some(
                        (r.solution.objective - reference.objective).abs()
                            / (1.0 + reference.objective.abs()),
                    )
                } else {
                    None
                }
            });
            let ok = outcomes.iter().filter(|o| o.is_some()).count();
            let errs: Stats = outcomes.into_iter().flatten().collect();
            t.row(vec![
                format!("{var:.0}"),
                name.into(),
                format!("{:.3}", errs.mean() * 100.0),
                format!("{:.3}", errs.max() * 100.0),
                format!("{ok}/{trials}"),
            ]);
        }
    }
    t.finish("ablation_variation_model");
    println!("\nExpected shape: Gaussian (mass concentrated near zero) is milder than");
    println!("uniform at the same maximum — the paper's uniform model is conservative.");
}
