//! **Figure 5(a)** — accuracy of the memristor crossbar-based linear
//! program solver (Algorithm 1) vs the `linprog` reference.
//!
//! Relative objective error over randomly generated feasible problems,
//! constraints swept exponentially, under 0/5/10/20% process variation.
//! Paper result: 0.2%–9.9% inaccuracy, decreasing with problem size.
//!
//! Run with `MEMLP_FULL=1` for the paper's full grid (m up to 1024).

use memlp_bench::experiments::{feasible_grid, SolverKind};
use memlp_bench::{Sweep, Table};

fn main() {
    let sweep = Sweep::paper(1024);
    println!(
        "Fig 5(a): Algorithm 1 accuracy — sizes {:?}, {} trials/point",
        sweep.sizes, sweep.trials
    );
    let grid = feasible_grid(SolverKind::Alg1, &sweep);

    let mut t = Table::new(
        "Fig 5(a): relative error of Algorithm 1 vs reference (mean over optimal trials)",
        &[
            "m",
            "var %",
            "mean err %",
            "max err %",
            "success",
            "iterations",
        ],
    );
    for p in &grid {
        t.row(vec![
            p.m.to_string(),
            format!("{:.0}", p.var_pct),
            format!("{:.3}", p.rel_error.mean() * 100.0),
            format!("{:.3}", p.rel_error.max() * 100.0),
            format!("{:.0}%", p.success_rate * 100.0),
            format!("{:.1}", p.iterations.mean()),
        ]);
    }
    t.finish("fig5a_accuracy");

    // Shape assertions mirroring the paper's qualitative claims.
    let worst = grid
        .iter()
        .map(|p| p.rel_error.max())
        .fold(0.0f64, f64::max);
    println!(
        "\nworst-case error anywhere on the grid: {:.2}% (paper: ≤ ~10%)",
        worst * 100.0
    );
}
