//! Shared experiment execution for the figure/table benches.

use std::time::Instant;

use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions, LargeScaleOptions, LargeScaleSolver};
use memlp_crossbar::CrossbarConfig;
use memlp_device::CostParams;
use memlp_lp::generator::RandomLp;
use memlp_lp::{LpProblem, LpStatus};
use memlp_solvers::{DensePdip, LpSolver, NormalEqPdip};

use crate::{run_trials, Stats, Sweep};

/// Which crossbar solver an experiment drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Algorithm 1 (full augmented system).
    Alg1,
    /// Algorithm 2 (large-scale split system).
    Alg2,
}

impl SolverKind {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SolverKind::Alg1 => "alg1",
            SolverKind::Alg2 => "alg2",
        }
    }
}

/// One trial's outcome.
#[derive(Debug, Clone, Copy)]
pub struct TrialOutcome {
    /// Terminal status.
    pub status: LpStatus,
    /// Relative objective error vs the f64 reference (NaN if not optimal).
    pub rel_error: f64,
    /// PDIP iterations.
    pub iterations: usize,
    /// Estimated hardware run-phase latency, s (retries included).
    pub hw_run_s: f64,
    /// Estimated hardware energy, J.
    pub hw_energy_j: f64,
    /// Reference solver wall time, s.
    pub ref_wall_s: f64,
}

/// Solves one instance on the chosen crossbar solver and the reference.
pub fn run_one(kind: SolverKind, lp: &LpProblem, var_pct: f64, seed: u64) -> TrialOutcome {
    let t0 = Instant::now();
    let reference = NormalEqPdip::default().solve(lp);
    let ref_wall_s = t0.elapsed().as_secs_f64();

    let config = CrossbarConfig::paper_default()
        .with_variation(var_pct)
        .with_seed(seed);
    let (solution, ledger) = match kind {
        SolverKind::Alg1 => {
            let r = CrossbarPdipSolver::new(config, CrossbarSolverOptions::default()).solve(lp);
            (r.solution, r.ledger)
        }
        SolverKind::Alg2 => {
            let r = LargeScaleSolver::new(config, LargeScaleOptions::default()).solve(lp);
            (r.solution, r.ledger)
        }
    };
    let rel_error = if solution.status.is_optimal() && reference.status.is_optimal() {
        (solution.objective - reference.objective).abs() / (1.0 + reference.objective.abs())
    } else {
        f64::NAN
    };
    TrialOutcome {
        status: solution.status,
        rel_error,
        iterations: solution.iterations,
        hw_run_s: ledger.run_time_s(),
        hw_energy_j: ledger.energy_j(&CostParams::default()),
        ref_wall_s,
    }
}

/// Aggregated results at one grid point.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Constraints `m`.
    pub m: usize,
    /// Variation percentage.
    pub var_pct: f64,
    /// Fraction of trials that ended with the expected status.
    pub success_rate: f64,
    /// Relative objective error stats (optimal trials only).
    pub rel_error: Stats,
    /// Iteration count stats.
    pub iterations: Stats,
    /// Hardware run-latency stats, s.
    pub hw_run_s: Stats,
    /// Hardware energy stats, J.
    pub hw_energy_j: Stats,
    /// Reference wall-time stats, s.
    pub ref_wall_s: Stats,
}

/// Runs the feasible-workload grid for one solver kind.
pub fn feasible_grid(kind: SolverKind, sweep: &Sweep) -> Vec<GridPoint> {
    grid(kind, sweep, false)
}

/// Runs the infeasible-workload grid (success = detected infeasible).
pub fn infeasible_grid(kind: SolverKind, sweep: &Sweep) -> Vec<GridPoint> {
    grid(kind, sweep, true)
}

fn grid(kind: SolverKind, sweep: &Sweep, infeasible: bool) -> Vec<GridPoint> {
    let mut out = Vec::new();
    for &m in &sweep.sizes {
        for &var in &sweep.variations {
            let outcomes = run_trials(sweep.trials, |trial| {
                let seed = 1000 + m as u64 * 131 + (var as u64) * 17 + trial as u64;
                let gen = RandomLp::paper(m, seed);
                let lp = if infeasible {
                    gen.infeasible()
                } else {
                    gen.feasible()
                };
                run_one(kind, &lp, var, seed ^ 0xBEEF)
            });
            let expected = if infeasible {
                LpStatus::Infeasible
            } else {
                LpStatus::Optimal
            };
            let successes = outcomes.iter().filter(|o| o.status == expected).count();
            out.push(GridPoint {
                m,
                var_pct: var,
                success_rate: successes as f64 / outcomes.len().max(1) as f64,
                rel_error: outcomes.iter().map(|o| o.rel_error).collect(),
                iterations: outcomes
                    .iter()
                    .filter(|o| o.status == expected)
                    .map(|o| o.iterations as f64)
                    .collect(),
                hw_run_s: outcomes
                    .iter()
                    .filter(|o| o.status == expected)
                    .map(|o| o.hw_run_s)
                    .collect(),
                hw_energy_j: outcomes
                    .iter()
                    .filter(|o| o.status == expected)
                    .map(|o| o.hw_energy_j)
                    .collect(),
                ref_wall_s: outcomes.iter().map(|o| o.ref_wall_s).collect(),
            });
        }
    }
    out
}

/// Measures the software baselines' wall time on feasible instances at one
/// size: `(normal_eq_seconds, dense_seconds_if_run)`. The dense baseline is
/// skipped above `dense_limit` (O(N³) per iteration gets slow).
pub fn software_latency(m: usize, trials: usize, dense_limit: usize) -> (Stats, Stats) {
    // Trials whose solve does not reach optimality are dropped (NaN is
    // ignored by `Stats`); a rare hard instance must not abort the sweep.
    let normal: Stats = run_trials(trials, |trial| {
        let lp = RandomLp::paper(m, 500 + trial as u64).feasible();
        let t = Instant::now();
        let s = NormalEqPdip::default().solve(&lp);
        let wall = t.elapsed().as_secs_f64();
        if s.status.is_optimal() {
            wall
        } else {
            f64::NAN
        }
    })
    .into_iter()
    .collect();

    let dense: Stats = if m <= dense_limit {
        run_trials(trials, |trial| {
            let lp = RandomLp::paper(m, 500 + trial as u64).feasible();
            let t = Instant::now();
            let s = DensePdip::default().solve(&lp);
            let wall = t.elapsed().as_secs_f64();
            if s.status.is_optimal() {
                wall
            } else {
                f64::NAN
            }
        })
        .into_iter()
        .collect()
    } else {
        Stats::new()
    };
    (normal, dense)
}
