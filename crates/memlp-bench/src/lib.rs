#![forbid(unsafe_code)]
//! Benchmark harness reproducing the paper's evaluation (§4).
//!
//! Every figure and table has a dedicated bench target (see DESIGN.md §5
//! for the experiment index); this library holds the shared machinery:
//!
//! * [`Sweep`] — the §4.2 experimental grid (constraint counts swept
//!   exponentially 4…1024, n = m/3, variation ∈ {0, 5, 10, 20}%, repeated
//!   trials), scaled by environment variables:
//!   - `MEMLP_FULL=1` — full paper grid (sizes to 1024, more trials),
//!   - `MEMLP_TRIALS=k` — override the trial count,
//! * [`Stats`] — streaming mean/min/max summaries,
//! * [`Table`] — aligned console tables plus CSV files under
//!   `target/memlp-results/`,
//! * [`run_trials`] — parallel trial execution across std threads,
//! * [`cpu_energy_j`] — the paper's CPU energy model (wall-clock × 35 W,
//!   the constant implied by its 218.1 J / 6.23 s figures).

pub mod experiments;

use std::io::Write as _;
use std::path::PathBuf;

use memlp_device::CostParams;

/// The experimental grid of §4.2.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Constraint counts `m` (n = m/3 is implied).
    pub sizes: Vec<usize>,
    /// Maximum-variation percentages.
    pub variations: Vec<f64>,
    /// Trials per grid point.
    pub trials: usize,
}

impl Sweep {
    /// The default grid: a fast subset unless `MEMLP_FULL=1`.
    ///
    /// `heavy_limit` caps the largest size for expensive solvers (the
    /// simulator pays O(N³) where the hardware would pay O(1); Algorithm 1
    /// at m = 1024 costs ~20 s of simulation per trial).
    pub fn paper(heavy_limit: usize) -> Sweep {
        let full = std::env::var("MEMLP_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut sizes: Vec<usize> = if full {
            vec![4, 16, 64, 256, 1024]
        } else {
            vec![4, 16, 64, 256]
        };
        sizes.retain(|&m| m <= heavy_limit);
        let trials = std::env::var("MEMLP_TRIALS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 10 } else { 3 });
        Sweep {
            sizes,
            variations: vec![0.0, 5.0, 10.0, 20.0],
            trials,
        }
    }

    /// A copy with different variation levels.
    pub fn with_variations(mut self, variations: Vec<f64>) -> Sweep {
        self.variations = variations;
        self
    }
}

/// Simple summary statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
}

impl Stats {
    /// Creates an empty accumulator.
    pub fn new() -> Stats {
        Stats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn push(&mut self, v: f64) {
        if v.is_finite() {
            self.count += 1;
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Observation count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl std::iter::FromIterator<f64> for Stats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Stats {
        let mut s = Stats::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

/// A console table that mirrors itself into a CSV file.
#[derive(Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout and writes `<name>.csv` under
    /// `target/memlp-results/`. Returns the CSV path when written.
    pub fn finish(&self, csv_name: &str) -> Option<PathBuf> {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:>width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }

        // Resolve against the workspace root so `cargo bench` (whose CWD is
        // the package directory) and direct binary runs land in one place.
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .map(|d| PathBuf::from(d).join("../.."))
            .filter(|p| p.join("Cargo.toml").exists())
            .unwrap_or_else(|| PathBuf::from("."));
        let dir = root.join("target/memlp-results");
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{csv_name}.csv"));
        let mut f = std::fs::File::create(&path).ok()?;
        writeln!(f, "{}", self.header.join(",")).ok()?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).ok()?;
        }
        println!("(csv: {})", path.display());
        Some(path)
    }
}

/// Runs `trials` independent executions of `f(trial_index)` across threads
/// (respecting `MEMLP_THREADS`) and returns the results in trial order.
pub fn run_trials<T: Send>(trials: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = memlp_linalg::parallel::Threads::resolve().get();
    memlp_linalg::parallel::run_indexed(threads, trials, f)
}

/// CPU-baseline energy for a measured wall time (paper methodology: 35 W).
pub fn cpu_energy_j(wall_seconds: f64) -> f64 {
    CostParams::default().cpu_energy(wall_seconds)
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "-".into()
    } else if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} µs", seconds * 1e6)
    }
}

/// Formats joules with an adaptive unit.
pub fn fmt_energy(joules: f64) -> String {
    if !joules.is_finite() {
        "-".into()
    } else if joules >= 1.0 {
        format!("{joules:.2} J")
    } else if joules >= 1e-3 {
        format!("{:.2} mJ", joules * 1e3)
    } else {
        format!("{:.2} µJ", joules * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s: Stats = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn stats_ignores_non_finite() {
        let s: Stats = [1.0, f64::NAN, f64::INFINITY].into_iter().collect();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = Stats::new();
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
    }

    #[test]
    fn sweep_respects_heavy_limit() {
        let s = Sweep::paper(256);
        assert!(s.sizes.iter().all(|&m| m <= 256));
        assert!(!s.sizes.is_empty());
        assert_eq!(s.variations, vec![0.0, 5.0, 10.0, 20.0]);
    }

    #[test]
    fn run_trials_preserves_order() {
        let out = run_trials(16, |i| i * 2);
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn cpu_energy_matches_paper_constant() {
        assert!((cpu_energy_j(6.23) - 218.05).abs() < 0.1);
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
        assert_eq!(fmt_energy(0.002), "2.00 mJ");
    }

    #[test]
    fn table_writes_csv() {
        let mut t = Table::new("test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.finish("bench_harness_selftest");
        if let Some(p) = path {
            let content = std::fs::read_to_string(p).unwrap();
            assert!(content.contains("a,b"));
            assert!(content.contains("1,2"));
        }
    }
}
