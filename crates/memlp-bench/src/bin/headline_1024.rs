//! Targeted m = 1024 headline experiment (the paper's §4.4 scale) for
//! EXPERIMENTS.md: both solvers, feasible + infeasible, all variation
//! levels, against the measured software baseline.

use memlp_bench::experiments::{run_one, SolverKind};
use memlp_bench::{cpu_energy_j, fmt_energy, fmt_time, Stats, Table};
use memlp_lp::generator::RandomLp;
use memlp_lp::LpStatus;
use memlp_solvers::{LpSolver, NormalEqPdip};
use std::time::Instant;

fn main() {
    let m = 1024;
    let trials = 2;
    println!("m = {m} headline experiment ({trials} trials/cell)");

    // ~30% of m = 1024 instances push the single-step reference past its
    // iteration cap; sample seeds until `trials` clean baselines land.
    let mut sw_feas = Stats::new();
    let mut sw_inf = Stats::new();
    let mut seed = 9000u64;
    while sw_feas.count() < trials && seed < 9020 {
        let lp = RandomLp::paper(m, seed).feasible();
        let t0 = Instant::now();
        let s = NormalEqPdip::default().solve(&lp);
        if s.status.is_optimal() {
            sw_feas.push(t0.elapsed().as_secs_f64());
        }
        seed += 1;
    }
    let mut seed = 9100u64;
    while sw_inf.count() < trials && seed < 9120 {
        let lp = RandomLp::paper(m, seed).infeasible();
        let t0 = Instant::now();
        let s = NormalEqPdip::default().solve(&lp);
        if s.status == LpStatus::Infeasible {
            sw_inf.push(t0.elapsed().as_secs_f64());
        }
        seed += 1;
    }
    println!(
        "software feasible {} infeasible {}",
        fmt_time(sw_feas.mean()),
        fmt_time(sw_inf.mean())
    );

    let mut table = Table::new(
        format!("m = {m}: headline latency/energy (paper §4.4 comparison)"),
        &[
            "workload",
            "solver",
            "var %",
            "latency",
            "energy",
            "err %",
            "iters",
            "speedup",
            "energy ratio",
            "ok",
        ],
    );
    for kind in [SolverKind::Alg2, SolverKind::Alg1] {
        // Algorithm 1 at this size costs ~20 s of simulation per solve;
        // keep its grid to the endpoints.
        let vars: &[f64] = if kind == SolverKind::Alg1 {
            &[0.0, 20.0]
        } else {
            &[0.0, 5.0, 10.0, 20.0]
        };
        for &var in vars {
            for (label, infeasible, sw) in
                [("feasible", false, &sw_feas), ("infeasible", true, &sw_inf)]
            {
                let mut lat = Stats::new();
                let mut en = Stats::new();
                let mut err = Stats::new();
                let mut iters = Stats::new();
                let mut ok = 0;
                for t in 0..trials {
                    let seed = 9200 + t as u64 + (var as u64) * 7;
                    let gen = RandomLp::paper(m, seed);
                    let lp = if infeasible {
                        gen.infeasible()
                    } else {
                        gen.feasible()
                    };
                    let o = run_one(kind, &lp, var, seed);
                    let expected = if infeasible {
                        LpStatus::Infeasible
                    } else {
                        LpStatus::Optimal
                    };
                    if o.status == expected {
                        ok += 1;
                        lat.push(o.hw_run_s);
                        en.push(o.hw_energy_j);
                        err.push(o.rel_error);
                        iters.push(o.iterations as f64);
                    }
                }
                table.row(vec![
                    label.into(),
                    kind.label().into(),
                    format!("{var:.0}"),
                    fmt_time(lat.mean()),
                    fmt_energy(en.mean()),
                    format!("{:.3}", err.mean() * 100.0),
                    format!("{:.0}", iters.mean()),
                    format!("{:.1}x", sw.mean() / lat.mean()),
                    format!("{:.1}x", cpu_energy_j(sw.mean()) / en.mean()),
                    format!("{ok}/{trials}"),
                ]);
                // stream progress
                println!("done {} {} var {}", kind.label(), label, var);
            }
        }
    }
    table.finish("headline_1024");
}
