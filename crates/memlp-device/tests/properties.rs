//! Property-based tests for the memristor device substrate.

use memlp_device::{
    DeviceParams, DynamicModel, LinearIonDrift, Memristor, PulseProgrammer, VariationModel, Window,
    Yakopcic,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// State stays in [0, 1] under arbitrary pulse sequences, for both
    /// dynamic models and every window.
    #[test]
    fn state_always_bounded(
        pulses in proptest::collection::vec((-3.0f64..3.0, 1e-9f64..1e-6), 1..50),
        x0 in 0.0f64..1.0,
        use_yakopcic in any::<bool>(),
    ) {
        let p = DeviceParams::default();
        let mut d = if use_yakopcic {
            Memristor::with_model(p, std::sync::Arc::new(Yakopcic::default()))
        } else {
            Memristor::new(p)
        };
        d.set_state(x0);
        for (v, dt) in pulses {
            d.apply_pulse(v, dt);
            prop_assert!((0.0..=1.0).contains(&d.state()));
        }
    }

    /// Sub-threshold biases never move the state (the §3.3 half-select
    /// guarantee).
    #[test]
    fn sub_threshold_is_nondestructive(
        x0 in 0.0f64..1.0,
        bias in -0.99f64..0.99,
        dt in 1e-9f64..1e-5,
    ) {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(x0);
        let before = d.state();
        d.apply_pulse(bias * p.v_threshold, dt);
        prop_assert_eq!(d.state(), before);
    }

    /// Conductance is monotone non-decreasing in state.
    #[test]
    fn conductance_monotone_in_state(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let p = DeviceParams::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.conductance(lo) <= p.conductance(hi) + 1e-18);
    }

    /// The programmer reaches any in-range target within its tolerance.
    #[test]
    fn programmer_reaches_targets(frac in 0.02f64..0.98, x0 in 0.0f64..1.0) {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(x0);
        let target = p.g_off() + frac * (p.g_on() - p.g_off());
        let prog = PulseProgrammer::new(p);
        let rep = prog.program(&mut d, target);
        prop_assert!(rep.converged, "target fraction {} from x0 {}", frac, x0);
        prop_assert!((rep.final_conductance - target).abs()
            <= prog.tolerance * (p.g_on() - p.g_off()) + 1e-15);
    }

    /// Variation factors always stay within the declared maximum band.
    #[test]
    fn variation_band_respected(pct in 0.0f64..30.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = VariationModel::uniform_pct(pct);
        for _ in 0..100 {
            let f = v.draw_factor(&mut rng);
            prop_assert!((f - 1.0).abs() <= pct / 100.0 + 1e-12);
        }
        let g = VariationModel::gaussian_pct(pct);
        for _ in 0..100 {
            let f = g.draw_factor(&mut rng);
            prop_assert!((f - 1.0).abs() <= pct / 100.0 + 1e-12);
        }
    }

    /// Window functions stay in [0, 1] over the full state range.
    #[test]
    fn windows_bounded(x in -0.5f64..1.5, i in -2.0f64..2.0, pw in 1u32..6) {
        for w in [Window::None, Window::Joglekar { p: pw }, Window::Biolek { p: pw }] {
            let v = w.evaluate(x, i);
            prop_assert!((0.0..=1.0).contains(&v), "{:?} gave {}", w, v);
        }
    }

    /// Current through the drift model obeys Ohm's law below threshold.
    #[test]
    fn ohmic_below_threshold(x in 0.0f64..1.0, bias in -0.9f64..0.9) {
        let p = DeviceParams::default();
        let m = LinearIonDrift::default();
        let v = bias * p.v_threshold;
        let i = m.current(&p, x, v);
        prop_assert!((i - v / p.memristance(x)).abs() < 1e-15);
    }
}
