/// Physical parameters of a memristor device.
///
/// Defaults follow the HP TiO₂ thin-film device of Strukov et al. (the
/// paper's Eqn 4 and references \[3\]\[12-15\]): `R_on = 100 Ω`,
/// `R_off = 16 kΩ`, 10 nm film, dopant mobility `1e-14 m²/(V·s)`, and a
/// write threshold around 1 V with ±2 V programming pulses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Low resistance state, Ω.
    pub r_on: f64,
    /// High resistance state, Ω.
    pub r_off: f64,
    /// Film thickness `D`, m.
    pub thickness: f64,
    /// Effective dopant mobility `µ_v`, m²/(V·s). The default is the
    /// high-field *effective* mobility calibrated so a full OFF→ON sweep
    /// takes a few hundred 50 ns pulses (≈8-bit programming granularity);
    /// the low-field literature value (~1e-14) corresponds to the
    /// sub-threshold regime where the state must not move at all.
    pub mobility: f64,
    /// Write threshold voltage `V_th`, V. Biases below this magnitude do not
    /// disturb the state (§2.3).
    pub v_threshold: f64,
    /// Programming pulse amplitude `V_dd`, V (|V_dd| > |V_th|).
    pub v_write: f64,
    /// Read voltage, V (|V_read| < |V_th| so reads are non-destructive).
    pub v_read: f64,
    /// Width of one programming pulse, s.
    pub pulse_width: f64,
}

impl DeviceParams {
    /// Maximum device conductance `g_on = 1/R_on`, S.
    #[inline]
    pub fn g_on(&self) -> f64 {
        1.0 / self.r_on
    }

    /// Minimum device conductance `g_off = 1/R_off`, S.
    #[inline]
    pub fn g_off(&self) -> f64 {
        1.0 / self.r_off
    }

    /// On/off conductance ratio `R_off / R_on`.
    #[inline]
    pub fn on_off_ratio(&self) -> f64 {
        self.r_off / self.r_on
    }

    /// Memristance at internal state `x ∈ [0, 1]` under the linear ion-drift
    /// model: `M(x) = R_on·x + R_off·(1 − x)` (x = 1 is fully doped / lowest
    /// resistance). This is Eqn 4 of the paper with `x = µ_v·R_on/D²·q`.
    #[inline]
    pub fn memristance(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        self.r_on * x + self.r_off * (1.0 - x)
    }

    /// Conductance at internal state `x ∈ [0, 1]`.
    #[inline]
    pub fn conductance(&self, x: f64) -> f64 {
        1.0 / self.memristance(x)
    }

    /// Internal state that realizes conductance `g` (clamped to the valid
    /// range `[g_off, g_on]`).
    #[inline]
    pub fn state_for_conductance(&self, g: f64) -> f64 {
        let g = g.clamp(self.g_off(), self.g_on());
        let m = 1.0 / g;
        ((self.r_off - m) / (self.r_off - self.r_on)).clamp(0.0, 1.0)
    }

    /// Validates parameter sanity (positive resistances, `r_off > r_on`,
    /// `v_write > v_threshold > v_read`).
    pub fn is_valid(&self) -> bool {
        self.r_on > 0.0
            && self.r_off > self.r_on
            && self.thickness > 0.0
            && self.mobility > 0.0
            && self.v_threshold > 0.0
            && self.v_write.abs() > self.v_threshold
            && self.v_read.abs() < self.v_threshold
            && self.pulse_width > 0.0
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            r_on: 100.0,
            r_off: 16_000.0,
            thickness: 10e-9,
            mobility: 4e-10,
            v_threshold: 1.0,
            v_write: 2.0,
            v_read: 0.3,
            pulse_width: 50e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(DeviceParams::default().is_valid());
    }

    #[test]
    fn conductance_bounds() {
        let p = DeviceParams::default();
        assert!((p.conductance(1.0) - p.g_on()).abs() < 1e-12);
        assert!((p.conductance(0.0) - p.g_off()).abs() < 1e-12);
        assert!(p.g_on() > p.g_off());
    }

    #[test]
    fn memristance_interpolates() {
        let p = DeviceParams::default();
        let mid = p.memristance(0.5);
        assert!(mid > p.r_on && mid < p.r_off);
        // Clamps out-of-range states.
        assert_eq!(p.memristance(-1.0), p.r_off);
        assert_eq!(p.memristance(2.0), p.r_on);
    }

    #[test]
    fn state_conductance_roundtrip() {
        let p = DeviceParams::default();
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let g = p.conductance(x);
            let back = p.state_for_conductance(g);
            assert!((back - x).abs() < 1e-10, "x={x} back={back}");
        }
    }

    #[test]
    fn state_for_out_of_range_conductance_clamps() {
        let p = DeviceParams::default();
        assert_eq!(p.state_for_conductance(1e9), 1.0);
        assert_eq!(p.state_for_conductance(0.0), 0.0);
    }

    #[test]
    fn invalid_configs_detected() {
        let p = DeviceParams {
            r_on: -1.0,
            ..Default::default()
        };
        assert!(!p.is_valid());
        let p = DeviceParams {
            v_read: 1.5, // read above threshold would disturb state
            ..Default::default()
        };
        assert!(!p.is_valid());
        let p = DeviceParams {
            v_write: 0.5, // write below threshold cannot program
            ..Default::default()
        };
        assert!(!p.is_valid());
    }

    #[test]
    fn on_off_ratio_default() {
        assert!((DeviceParams::default().on_off_ratio() - 160.0).abs() < 1e-9);
    }
}
