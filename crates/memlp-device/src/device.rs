use std::sync::Arc;

use crate::model::{DynamicModel, LinearIonDrift};
use crate::params::DeviceParams;

/// A stateful memristor device instance.
///
/// Wraps a [`DynamicModel`] and the device's internal state `x ∈ [0, 1]`.
/// Reads (below-threshold biases) report conductance without disturbing the
/// state — the paper notes the compute-phase disturb is negligible (§2.3) —
/// while write pulses (above threshold) move the state.
///
/// # Example
///
/// ```
/// use memlp_device::{DeviceParams, Memristor};
///
/// let p = DeviceParams::default();
/// let mut d = Memristor::new(p);
/// let g0 = d.read_conductance();
/// d.apply_pulse(p.v_write, p.pulse_width);
/// assert!(d.read_conductance() > g0);
/// ```
#[derive(Debug, Clone)]
pub struct Memristor {
    params: DeviceParams,
    model: Arc<dyn DynamicModel>,
    state: f64,
}

impl Memristor {
    /// Creates a device with the default [`LinearIonDrift`] model, starting
    /// fully OFF (`x = 0`).
    pub fn new(params: DeviceParams) -> Self {
        Memristor {
            params,
            model: Arc::new(LinearIonDrift::default()),
            state: 0.0,
        }
    }

    /// Creates a device with a custom dynamic model.
    pub fn with_model(params: DeviceParams, model: Arc<dyn DynamicModel>) -> Self {
        Memristor {
            params,
            model,
            state: 0.0,
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Internal state `x ∈ [0, 1]`.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Forces the internal state (test/bench helper; hardware cannot do
    /// this — it must program via pulses).
    pub fn set_state(&mut self, x: f64) {
        self.state = x.clamp(0.0, 1.0);
    }

    /// Non-destructive conductance read at the device's read voltage.
    ///
    /// memlp-lint: analog_source
    pub fn read_conductance(&self) -> f64 {
        // The read bias is below threshold, so state is untouched and the
        // device is Ohmic: g = i/v = 1/M(x).
        self.params.conductance(self.state)
    }

    /// Current drawn at an arbitrary bias `v` (state unchanged; callers use
    /// this for sub-threshold compute biases).
    pub fn current_at(&self, v: f64) -> f64 {
        self.model.current(&self.params, self.state, v)
    }

    /// Applies one voltage pulse of amplitude `v` and width `dt` seconds,
    /// integrating the state dynamics in sub-steps for accuracy. Returns the
    /// energy dissipated in the device during the pulse (J).
    pub fn apply_pulse(&mut self, v: f64, dt: f64) -> f64 {
        const SUBSTEPS: usize = 8;
        let h = dt / SUBSTEPS as f64;
        let mut energy = 0.0;
        for _ in 0..SUBSTEPS {
            let i = self.model.current(&self.params, self.state, v);
            energy += (v * i).abs() * h;
            self.state = self.model.step(&self.params, self.state, v, h);
        }
        energy
    }

    /// Applies the half-select disturb bias `V_dd/2` used while programming
    /// *other* devices in a crossbar (§3.3). With `|V_dd/2| < V_th` this is
    /// a no-op on the state; modelled explicitly so tests can confirm the
    /// biasing scheme is safe.
    pub fn apply_half_select(&mut self, dt: f64) -> f64 {
        self.apply_pulse(0.5 * self.params.v_write, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Yakopcic;

    #[test]
    fn new_device_starts_off() {
        let d = Memristor::new(DeviceParams::default());
        assert_eq!(d.state(), 0.0);
        assert!((d.read_conductance() - d.params().g_off()).abs() < 1e-15);
    }

    #[test]
    fn positive_pulses_increase_conductance() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let g0 = d.read_conductance();
        for _ in 0..100 {
            d.apply_pulse(p.v_write, p.pulse_width);
        }
        assert!(d.read_conductance() > g0);
    }

    #[test]
    fn negative_pulses_reverse() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(0.8);
        let g_hi = d.read_conductance();
        for _ in 0..100 {
            d.apply_pulse(-p.v_write, p.pulse_width);
        }
        assert!(d.read_conductance() < g_hi);
    }

    #[test]
    fn half_select_does_not_disturb() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(0.5);
        for _ in 0..1000 {
            d.apply_half_select(p.pulse_width);
        }
        assert_eq!(d.state(), 0.5, "V_dd/2 < V_th must not move the state");
    }

    #[test]
    fn pulse_reports_positive_energy() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(0.5);
        let e = d.apply_pulse(p.v_write, p.pulse_width);
        assert!(e > 0.0);
        // Sanity: energy ≈ V²/M · t within an order of magnitude.
        let rough = p.v_write * p.v_write / p.memristance(0.5) * p.pulse_width;
        assert!(e > 0.1 * rough && e < 10.0 * rough, "e={e}, rough={rough}");
    }

    #[test]
    fn set_state_clamps() {
        let mut d = Memristor::new(DeviceParams::default());
        d.set_state(5.0);
        assert_eq!(d.state(), 1.0);
        d.set_state(-1.0);
        assert_eq!(d.state(), 0.0);
    }

    #[test]
    fn custom_model_is_used() {
        let p = DeviceParams::default();
        let mut d = Memristor::with_model(p, Arc::new(Yakopcic::default()));
        d.set_state(0.5);
        // Yakopcic current at read voltage differs from Ohmic read.
        let i = d.current_at(p.v_read);
        assert!(i != 0.0);
    }
}
