/// Conductance drift (retention loss).
///
/// Programmed memristor states relax over time — dopants diffuse back and
/// the stored conductance decays toward the OFF state. The paper assumes
/// perfect retention over a solve (defensible at millisecond scale); this
/// model makes the assumption testable: stored values decay exponentially,
/// `v(t) = v₀ · exp(−t/τ)`, and the `ablation_drift` bench asks when a
/// solve starts needing periodic refresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Retention time constant τ, s (`None` = perfect retention).
    pub tau_s: Option<f64>,
}

impl DriftModel {
    /// Perfect retention (the paper's implicit assumption).
    pub fn none() -> Self {
        DriftModel { tau_s: None }
    }

    /// Exponential decay with time constant `tau_s`.
    ///
    /// # Panics
    ///
    /// Panics if `tau_s` is not strictly positive.
    pub fn exponential(tau_s: f64) -> Self {
        assert!(
            tau_s > 0.0,
            "retention time constant must be positive, got {tau_s}"
        );
        DriftModel { tau_s: Some(tau_s) }
    }

    /// Returns `true` for perfect retention.
    pub fn is_none(&self) -> bool {
        self.tau_s.is_none()
    }

    /// Multiplicative decay factor after `dt` seconds.
    pub fn factor(&self, dt: f64) -> f64 {
        match self.tau_s {
            None => 1.0,
            Some(tau) => (-dt.max(0.0) / tau).exp(),
        }
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_decays() {
        let d = DriftModel::none();
        assert!(d.is_none());
        assert_eq!(d.factor(1e9), 1.0);
    }

    #[test]
    fn exponential_decay_shape() {
        let d = DriftModel::exponential(1.0);
        assert!((d.factor(1.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert_eq!(d.factor(0.0), 1.0);
        assert!(d.factor(2.0) < d.factor(1.0));
    }

    #[test]
    fn negative_dt_is_clamped() {
        let d = DriftModel::exponential(1.0);
        assert_eq!(d.factor(-5.0), 1.0);
    }

    #[test]
    fn composition_property() {
        // factor(a+b) = factor(a)·factor(b): ageing twice equals ageing once.
        let d = DriftModel::exponential(3.0);
        let lhs = d.factor(0.7 + 1.3);
        let rhs = d.factor(0.7) * d.factor(1.3);
        assert!((lhs - rhs).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_tau() {
        DriftModel::exponential(0.0);
    }
}
