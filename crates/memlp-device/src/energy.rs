/// Timing and energy constants used to estimate hardware cost.
///
/// The paper's latency/energy results (§4.4) are *estimates* assembled from
/// (i) simulated iteration counts and (ii) per-iteration hardware activity
/// (2.7·m coefficient updates, one analog solve, one analog MVM, plus
/// conversions), costed with device-level constants from its reference
/// \[23\]. This struct holds those constants with the calibration documented
/// field by field; the benchmark harness reports both the constants and the
/// resulting estimates so the derivation is reproducible.
///
/// All times are seconds, energies joules, powers watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Width of one programming pulse (write path), s.
    pub pulse_width_s: f64,
    /// Time for one verify read between pulses, s.
    pub verify_read_s: f64,
    /// Average pulse+verify cycles to program one coefficient to 8-bit
    /// precision on ideal hardware.
    pub base_write_cycles: f64,
    /// Extra write–verify cycles per percentage point of process variation
    /// (variation makes each landed value noisier, so the verify loop
    /// re-pulses more often).
    pub verify_cycles_per_var_pct: f64,
    /// Energy of one write cycle including driver/decoder overhead, J.
    pub write_cycle_energy_j: f64,
    /// Analog settle time for one crossbar operation (MVM or solve), s.
    pub settle_time_s: f64,
    /// Per-sample A/D conversion time, s.
    pub adc_time_s: f64,
    /// Per-sample A/D conversion energy, J.
    pub adc_energy_j: f64,
    /// Per-sample D/A conversion time, s.
    pub dac_time_s: f64,
    /// Per-sample D/A conversion energy, J.
    pub dac_energy_j: f64,
    /// Static power of CMOS peripherals (controllers, sense amps, summing
    /// amplifiers), W; charged for the full solve duration.
    pub static_power_w: f64,
    /// Active power assumed for the CPU baseline, W. 35 W reproduces the
    /// paper's implied figure (218.1 J / 6.23 s for `linprog` at m = 1024).
    pub cpu_power_w: f64,
}

impl CostParams {
    /// Average write–verify cycles per coefficient at a given variation
    /// level (`var_fraction` = 0.10 for 10%).
    pub fn write_cycles(&self, var_fraction: f64) -> f64 {
        self.base_write_cycles + self.verify_cycles_per_var_pct * (var_fraction * 100.0)
    }

    /// Time to program one coefficient, s.
    pub fn write_time(&self, var_fraction: f64) -> f64 {
        self.write_cycles(var_fraction) * (self.pulse_width_s + self.verify_read_s)
    }

    /// Energy to program one coefficient, J.
    pub fn write_energy(&self, var_fraction: f64) -> f64 {
        self.write_cycles(var_fraction) * self.write_cycle_energy_j
    }

    /// CPU-baseline energy for a measured wall-clock time, J.
    pub fn cpu_energy(&self, wall_seconds: f64) -> f64 {
        self.cpu_power_w * wall_seconds
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            // 50 ns pulses and verify reads; ~10 cycles reach 8-bit
            // precision on ideal devices, so one coefficient costs ~1 µs —
            // with the paper's 2.7·m updates per iteration this reproduces
            // the ~78 ms no-variation estimate at m = 1024 for the
            // simulated iteration counts.
            pulse_width_s: 50e-9,
            verify_read_s: 50e-9,
            base_write_cycles: 10.0,
            // +0.5 cycles per % variation: at 20% this doubles programming
            // effort, matching the paper's latency growth with variation on
            // top of its iteration-count growth.
            verify_cycles_per_var_pct: 0.5,
            // Write path (driver + decoder + device), per cycle.
            write_cycle_energy_j: 120e-9,
            settle_time_s: 100e-9,
            adc_time_s: 10e-9,
            adc_energy_j: 5e-12,
            dac_time_s: 5e-9,
            dac_energy_j: 2e-12,
            // CMOS controller + sense/summing amplifiers.
            static_power_w: 10.0,
            cpu_power_w: 35.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_cycles_grow_with_variation() {
        let c = CostParams::default();
        assert!(c.write_cycles(0.20) > c.write_cycles(0.05));
        assert_eq!(c.write_cycles(0.0), c.base_write_cycles);
    }

    #[test]
    fn write_time_is_cycles_times_cycle_time() {
        let c = CostParams::default();
        let t = c.write_time(0.0);
        assert!((t - 10.0 * 100e-9).abs() < 1e-15);
    }

    #[test]
    fn default_write_time_near_one_microsecond() {
        let c = CostParams::default();
        let t = c.write_time(0.0);
        assert!(t > 0.5e-6 && t < 2e-6, "write time {t} s should be ≈1 µs");
    }

    #[test]
    fn cpu_energy_reproduces_paper_headline() {
        // 6.23 s at 35 W ⇒ 218.05 J ≈ the paper's 218.1 J.
        let c = CostParams::default();
        let e = c.cpu_energy(6.23);
        assert!((e - 218.1).abs() < 0.5, "cpu energy {e}");
    }

    #[test]
    fn write_energy_positive_and_monotone() {
        let c = CostParams::default();
        assert!(c.write_energy(0.0) > 0.0);
        assert!(c.write_energy(0.2) > c.write_energy(0.1));
    }
}
