#![forbid(unsafe_code)]
//! Memristor device models for the `memlp` workspace.
//!
//! The paper's solver hardware is built from TiO₂-style memristors (§2.2,
//! Eqn 4) arranged in crossbars. This crate provides the device-level
//! substrate:
//!
//! * [`DeviceParams`] — physical parameters (R_on/R_off, threshold voltage,
//!   film thickness, dopant mobility) with HP-TiO₂-like defaults,
//! * [`LinearIonDrift`] — the HP linear ion-drift dynamic model (Eqn 4)
//!   with selectable [`Window`] functions (Joglekar, Biolek),
//! * [`Yakopcic`] — a generalized threshold model in the style of the
//!   paper's timing/energy reference \[23\],
//! * [`Memristor`] — a stateful device instance driven by voltage pulses,
//! * [`PulseProgrammer`] — write-pulse-train programming with write–verify,
//!   the §3.3 mechanism for writing matrix coefficients,
//! * [`FaultMap`] — the write–verify defect report (cells that failed to
//!   converge within the pulse budget, in deterministic row-major order),
//!   consumed by the crossbar/solver recovery ladder,
//! * [`VariationModel`] — the §4.1 process-variation model
//!   (`M′ = M + M ∘ (var · Rd)`, uniform `Rd`),
//! * [`CostParams`] — the named timing/energy constants behind every
//!   latency/energy estimate in the benchmark harness.
//!
//! # Example
//!
//! ```
//! use memlp_device::{DeviceParams, Memristor, PulseProgrammer};
//!
//! let params = DeviceParams::default();
//! let mut device = Memristor::new(params);
//! let programmer = PulseProgrammer::new(params);
//! let target = 0.5 * (params.g_on() + params.g_off());
//! let report = programmer.program(&mut device, target);
//! assert!(report.achieved_within(target, 0.05));
//! ```

mod device;
mod drift;
mod energy;
mod model;
mod params;
mod programming;
mod variation;
mod window;

pub use device::Memristor;
pub use drift::DriftModel;
pub use energy::CostParams;
pub use model::{DynamicModel, LinearIonDrift, Yakopcic};
pub use params::DeviceParams;
pub use programming::{FaultClass, FaultEntry, FaultMap, ProgramReport, PulseProgrammer};
pub use variation::{VariationDistribution, VariationModel};
pub use window::Window;
