use rand::Rng;

/// Distribution family for per-write process variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariationDistribution {
    /// Uniform on `[-1, 1]` scaled by the maximum percentage — the paper's
    /// model (§4.1: "we model it as a uniform distribution with a maximum
    /// range", Eqn 18).
    Uniform,
    /// Zero-mean Gaussian whose 3σ equals the maximum percentage; provided
    /// for sensitivity studies beyond the paper.
    Gaussian,
}

/// The §4.1 process-variation model: `M′ = M + M ∘ (var · Rd)` where `Rd`
/// has i.i.d. entries with `|Rd| ≤ 1`.
///
/// Variation is drawn **per write**: every time a coefficient is programmed
/// into a crossbar, a fresh deviate corrupts the stored conductance. This
/// matches the paper's observation (§4.3) that re-solving after a failure
/// redraws the variation and thereby restores convergence.
///
/// # Example
///
/// ```
/// use memlp_device::VariationModel;
/// use rand::SeedableRng;
///
/// let var = VariationModel::uniform_pct(10.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let v = var.perturb(2.0, &mut rng);
/// assert!((v - 2.0).abs() <= 0.2 + 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Maximum variation magnitude as a fraction (0.10 = "up to 10%").
    pub max_fraction: f64,
    /// Distribution family.
    pub distribution: VariationDistribution,
}

impl VariationModel {
    /// No variation at all (ideal hardware).
    pub fn none() -> Self {
        VariationModel {
            max_fraction: 0.0,
            distribution: VariationDistribution::Uniform,
        }
    }

    /// Uniform variation with maximum `pct` percent (the paper sweeps 5, 10
    /// and 20).
    pub fn uniform_pct(pct: f64) -> Self {
        VariationModel {
            max_fraction: pct / 100.0,
            distribution: VariationDistribution::Uniform,
        }
    }

    /// Gaussian variation whose 3σ corresponds to `pct` percent.
    pub fn gaussian_pct(pct: f64) -> Self {
        VariationModel {
            max_fraction: pct / 100.0,
            distribution: VariationDistribution::Gaussian,
        }
    }

    /// Returns `true` if this model never perturbs values.
    pub fn is_none(&self) -> bool {
        self.max_fraction == 0.0
    }

    /// Draws the multiplicative factor `(1 + var·rd)` for one write.
    pub fn draw_factor(&self, rng: &mut impl Rng) -> f64 {
        if self.max_fraction == 0.0 {
            return 1.0;
        }
        let rd = match self.distribution {
            VariationDistribution::Uniform => rng.random_range(-1.0..=1.0),
            VariationDistribution::Gaussian => {
                // Box–Muller; clamp to [-1, 1] to respect the "maximum
                // range" semantics of Eqn 18 (3σ = max).
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (z / 3.0).clamp(-1.0, 1.0)
            }
        };
        1.0 + self.max_fraction * rd
    }

    /// Perturbs a single written value: `m′ = m · (1 + var·rd)` (Eqn 18
    /// applied entrywise).
    pub fn perturb(&self, value: f64, rng: &mut impl Rng) -> f64 {
        value * self.draw_factor(rng)
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = VariationModel::none();
        assert!(v.is_none());
        for _ in 0..100 {
            assert_eq!(v.perturb(3.5, &mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_respects_max_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = VariationModel::uniform_pct(20.0);
        for _ in 0..10_000 {
            let f = v.draw_factor(&mut rng);
            assert!((0.8..=1.2).contains(&f), "factor {f} outside 20% band");
        }
    }

    #[test]
    fn uniform_covers_the_band() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = VariationModel::uniform_pct(10.0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..10_000 {
            let f = v.draw_factor(&mut rng);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.92, "never drew near the lower edge: {lo}");
        assert!(hi > 1.08, "never drew near the upper edge: {hi}");
    }

    #[test]
    fn gaussian_respects_max_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = VariationModel::gaussian_pct(10.0);
        for _ in 0..10_000 {
            let f = v.draw_factor(&mut rng);
            assert!((0.9..=1.1).contains(&f));
        }
    }

    #[test]
    fn mean_factor_near_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = VariationModel::uniform_pct(20.0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| v.draw_factor(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_value_stays_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = VariationModel::uniform_pct(20.0);
        assert_eq!(v.perturb(0.0, &mut rng), 0.0);
    }
}
