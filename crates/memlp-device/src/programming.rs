use crate::device::Memristor;
use crate::model::{DynamicModel, LinearIonDrift};
use crate::params::DeviceParams;

/// Programs memristors to target conductances with write pulse trains and a
/// write–verify loop (§3.3 of the paper: "Programming a memristor device to
/// a specific resistance is achieved by adjusting the amplitude and width of
/// the write pulse (or the total number of write pulse spikes)").
///
/// The programmer applies write-voltage pulses whose *width* is adapted to
/// the remaining conductance error (the paper's §3.3 notes both amplitude
/// and width/spike-count modulation are available), reading back below
/// threshold after each pulse, until the conductance is within `tolerance`
/// of the target or `max_pulses` is exhausted. The width adaptation is a
/// Newton-style step on the device's state equation, which is why a
/// coefficient lands at 8-bit precision in ~10 cycles — the figure the
/// [`crate::CostParams`] latency model assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseProgrammer {
    params: DeviceParams,
    /// Relative conductance tolerance for verify (fraction of the full
    /// conductance range).
    pub tolerance: f64,
    /// Upper bound on pulses per programming operation.
    pub max_pulses: usize,
}

/// Outcome of one programming operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramReport {
    /// Pulses actually applied.
    pub pulses: usize,
    /// Total programming time, s (pulses × pulse width, plus one verify
    /// read per pulse).
    pub time_s: f64,
    /// Total energy dissipated in the device, J.
    pub energy_j: f64,
    /// Conductance reached, S.
    pub final_conductance: f64,
    /// Whether verify succeeded within tolerance.
    pub converged: bool,
}

impl ProgramReport {
    /// Returns `true` if the final conductance is within `rel` (relative to
    /// the conductance range) of `target`.
    pub fn achieved_within(&self, target: f64, rel: f64) -> bool {
        (self.final_conductance - target).abs() <= rel * target.abs().max(1e-12)
    }
}

impl PulseProgrammer {
    /// Creates a programmer with a 1% verify tolerance and a generous pulse
    /// budget.
    pub fn new(params: DeviceParams) -> Self {
        PulseProgrammer {
            params,
            tolerance: 0.01,
            max_pulses: 10_000,
        }
    }

    /// Device parameters this programmer drives.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Programs `device` to conductance `target` (clamped to the physical
    /// range) and reports the cost.
    pub fn program(&self, device: &mut Memristor, target: f64) -> ProgramReport {
        let g_lo = self.params.g_off();
        let g_hi = self.params.g_on();
        let target = target.clamp(g_lo, g_hi);
        let range = g_hi - g_lo;
        let tol = self.tolerance * range;

        let target_state = self.params.state_for_conductance(target);
        let mut pulses = 0;
        let mut energy = 0.0;
        let mut time = 0.0;
        loop {
            let g = device.read_conductance();
            time += self.params.pulse_width; // verify read slot
            if (g - target).abs() <= tol {
                return ProgramReport {
                    pulses,
                    time_s: time,
                    energy_j: energy,
                    final_conductance: g,
                    converged: true,
                };
            }
            if pulses >= self.max_pulses {
                return ProgramReport {
                    pulses,
                    time_s: time,
                    energy_j: energy,
                    final_conductance: g,
                    converged: false,
                };
            }
            let v = if g < target {
                self.params.v_write
            } else {
                -self.params.v_write
            };
            // Newton-style width: Δx / (dx/dt) at the current operating
            // point, clamped to [1, 64] base pulse widths. A damping factor
            // below 1 avoids overshoot from the window nonlinearity.
            let model = LinearIonDrift::default();
            let rate = model
                .state_derivative(&self.params, device.state(), v)
                .abs()
                .max(1e-12);
            let dx = (target_state - device.state()).abs();
            // Width is modulated both up (large errors) and down (fine
            // trimming near the target, where dg/dx is steep).
            let width = (0.8 * dx / rate).clamp(
                self.params.pulse_width / 64.0,
                64.0 * self.params.pulse_width,
            );
            energy += device.apply_pulse(v, width);
            time += width;
            pulses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_midrange_target() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer::new(p);
        let target = 0.4 * p.g_on() + 0.6 * p.g_off();
        let rep = prog.program(&mut d, target);
        assert!(rep.converged, "pulses={}", rep.pulses);
        assert!(rep.achieved_within(target, 0.05));
        assert!(rep.pulses > 0);
        assert!(rep.time_s > 0.0);
        assert!(rep.energy_j > 0.0);
    }

    #[test]
    fn already_at_target_needs_no_pulses() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer::new(p);
        let rep = prog.program(&mut d, p.g_off());
        assert!(rep.converged);
        assert_eq!(rep.pulses, 0);
        assert_eq!(rep.energy_j, 0.0);
    }

    #[test]
    fn programs_downward() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(0.9);
        let prog = PulseProgrammer::new(p);
        let target = 0.2 * p.g_on() + 0.8 * p.g_off();
        let rep = prog.program(&mut d, target);
        assert!(rep.converged);
        assert!(rep.achieved_within(target, 0.05));
    }

    #[test]
    fn out_of_range_target_is_clamped() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer::new(p);
        let rep = prog.program(&mut d, 10.0 * p.g_on());
        // Saturates at g_on (window slows near boundary; allow 5%).
        assert!(rep.final_conductance > 0.9 * p.g_on());
    }

    #[test]
    fn pulse_budget_respected() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer {
            max_pulses: 3,
            ..PulseProgrammer::new(p)
        };
        let rep = prog.program(&mut d, p.g_on());
        assert!(!rep.converged);
        assert_eq!(rep.pulses, 3);
    }

    #[test]
    fn finer_tolerance_needs_at_least_as_many_pulses() {
        let p = DeviceParams::default();
        let target = 0.5 * (p.g_on() + p.g_off());

        let mut d1 = Memristor::new(p);
        let coarse = PulseProgrammer {
            tolerance: 0.05,
            ..PulseProgrammer::new(p)
        };
        let r1 = coarse.program(&mut d1, target);

        let mut d2 = Memristor::new(p);
        let fine = PulseProgrammer {
            tolerance: 0.005,
            ..PulseProgrammer::new(p)
        };
        let r2 = fine.program(&mut d2, target);

        assert!(r2.pulses >= r1.pulses);
    }
}
