use crate::device::Memristor;
use crate::model::{DynamicModel, LinearIonDrift};
use crate::params::DeviceParams;

/// Programs memristors to target conductances with write pulse trains and a
/// write–verify loop (§3.3 of the paper: "Programming a memristor device to
/// a specific resistance is achieved by adjusting the amplitude and width of
/// the write pulse (or the total number of write pulse spikes)").
///
/// The programmer applies write-voltage pulses whose *width* is adapted to
/// the remaining conductance error (the paper's §3.3 notes both amplitude
/// and width/spike-count modulation are available), reading back below
/// threshold after each pulse, until the conductance is within `tolerance`
/// of the target or `max_pulses` is exhausted. The width adaptation is a
/// Newton-style step on the device's state equation, which is why a
/// coefficient lands at 8-bit precision in ~10 cycles — the figure the
/// [`crate::CostParams`] latency model assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseProgrammer {
    params: DeviceParams,
    /// Relative conductance tolerance for verify (fraction of the full
    /// conductance range).
    pub tolerance: f64,
    /// Upper bound on pulses per programming operation.
    pub max_pulses: usize,
}

/// Outcome of one programming operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramReport {
    /// Pulses actually applied.
    pub pulses: usize,
    /// Total programming time, s (pulses × pulse width, plus one verify
    /// read per pulse).
    pub time_s: f64,
    /// Total energy dissipated in the device, J.
    pub energy_j: f64,
    /// Conductance reached, S.
    pub final_conductance: f64,
    /// Whether verify succeeded within tolerance.
    pub converged: bool,
}

impl ProgramReport {
    /// Returns `true` if the final conductance is within `rel` (relative to
    /// the conductance range) of `target`.
    pub fn achieved_within(&self, target: f64, rel: f64) -> bool {
        (self.final_conductance - target).abs() <= rel * target.abs().max(1e-12)
    }
}

impl PulseProgrammer {
    /// Creates a programmer with a 1% verify tolerance and a generous pulse
    /// budget.
    pub fn new(params: DeviceParams) -> Self {
        PulseProgrammer {
            params,
            tolerance: 0.01,
            max_pulses: 10_000,
        }
    }

    /// Device parameters this programmer drives.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Programs `device` to conductance `target` (clamped to the physical
    /// range) and reports the cost.
    pub fn program(&self, device: &mut Memristor, target: f64) -> ProgramReport {
        let g_lo = self.params.g_off();
        let g_hi = self.params.g_on();
        let target = target.clamp(g_lo, g_hi);
        let range = g_hi - g_lo;
        let tol = self.tolerance * range;

        let target_state = self.params.state_for_conductance(target);
        let mut pulses = 0;
        let mut energy = 0.0;
        let mut time = 0.0;
        loop {
            let g = device.read_conductance();
            time += self.params.pulse_width; // verify read slot
            if (g - target).abs() <= tol {
                return ProgramReport {
                    pulses,
                    time_s: time,
                    energy_j: energy,
                    final_conductance: g,
                    converged: true,
                };
            }
            if pulses >= self.max_pulses {
                return ProgramReport {
                    pulses,
                    time_s: time,
                    energy_j: energy,
                    final_conductance: g,
                    converged: false,
                };
            }
            let v = if g < target {
                self.params.v_write
            } else {
                -self.params.v_write
            };
            // Newton-style width: Δx / (dx/dt) at the current operating
            // point, clamped to [1, 64] base pulse widths. A damping factor
            // below 1 avoids overshoot from the window nonlinearity.
            let model = LinearIonDrift::default();
            let rate = model
                .state_derivative(&self.params, device.state(), v)
                .abs()
                .max(1e-12);
            let dx = (target_state - device.state()).abs();
            // Width is modulated both up (large errors) and down (fine
            // trimming near the target, where dg/dx is steep).
            let width = (0.8 * dx / rate).clamp(
                self.params.pulse_width / 64.0,
                64.0 * self.params.pulse_width,
            );
            energy += device.apply_pulse(v, width);
            time += width;
            pulses += 1;
        }
    }
}

/// Classification of a cell that failed write–verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Observed value sits above the verify band — the cell reads more
    /// conductive than programmed (stuck-on-like).
    StuckHigh,
    /// Observed value sits below the verify band (stuck-off-like; a dead
    /// line manifests as a full row/column of these).
    StuckLow,
}

/// One cell that failed write–verify.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEntry {
    /// Array row of the cell.
    pub row: usize,
    /// Array column of the cell.
    pub col: usize,
    /// Value the programmer tried to write.
    pub target: f64,
    /// Value the verify read observed.
    pub observed: f64,
    /// Which side of the band the cell landed on.
    pub class: FaultClass,
}

/// The result of a write–verify sweep over an array: every cell whose
/// observed value cannot be explained by in-spec variation, in row-major
/// order.
///
/// Entries are kept in a **sorted vector** (row-major), never an unordered
/// map, so iteration order — and everything derived from it, including the
/// recovery decisions the solvers make — is deterministic by construction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    entries: Vec<FaultEntry>,
}

impl FaultMap {
    /// An empty map for a `rows × cols` array.
    pub fn new(rows: usize, cols: usize) -> Self {
        FaultMap {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Builds the map by comparing `observed` against `target` (both
    /// row-major slices of length `rows * cols`): a cell is flagged when
    /// `|observed − target| > rel_band·|target| + abs_floor`. The band
    /// should cover in-spec write variation so only genuine defects are
    /// reported. Slices shorter than `rows * cols` are compared over their
    /// common prefix.
    pub fn detect(
        rows: usize,
        cols: usize,
        target: &[f64],
        observed: &[f64],
        rel_band: f64,
        abs_floor: f64,
    ) -> Self {
        let mut map = FaultMap::new(rows, cols);
        let n = (rows * cols).min(target.len()).min(observed.len());
        for idx in 0..n {
            let t = target[idx];
            let o = observed[idx];
            let band = rel_band * t.abs() + abs_floor;
            if (o - t).abs() > band {
                map.entries.push(FaultEntry {
                    row: idx / cols,
                    col: idx % cols,
                    target: t,
                    observed: o,
                    class: if o > t {
                        FaultClass::StuckHigh
                    } else {
                        FaultClass::StuckLow
                    },
                });
            }
        }
        map
    }

    /// Records the outcome of one device-level programming operation: a
    /// report that failed to converge within its pulse budget becomes a
    /// fault-map entry (the write–verify hardware path).
    pub fn record(&mut self, report: &ProgramReport, row: usize, col: usize, target: f64) {
        if report.converged {
            return;
        }
        let entry = FaultEntry {
            row,
            col,
            target,
            observed: report.final_conductance,
            class: if report.final_conductance > target {
                FaultClass::StuckHigh
            } else {
                FaultClass::StuckLow
            },
        };
        // Keep row-major order for deterministic downstream iteration.
        let pos = self
            .entries
            .partition_point(|e| (e.row, e.col) < (row, col));
        self.entries.insert(pos, entry);
    }

    /// Array rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns covered.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The faulty cells, row-major.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Number of faulty cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when verify found no defects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rows on which *every* programmed cell failed verify low — the
    /// signature of a dead word line. Returns ascending row indices;
    /// meaningful only when `cols > 1`.
    pub fn suspected_dead_rows(&self) -> Vec<usize> {
        if self.cols < 2 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for row in 0..self.rows {
            let low = self
                .entries
                .iter()
                .filter(|e| e.row == row && e.class == FaultClass::StuckLow)
                .count();
            if low == self.cols {
                out.push(row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_midrange_target() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer::new(p);
        let target = 0.4 * p.g_on() + 0.6 * p.g_off();
        let rep = prog.program(&mut d, target);
        assert!(rep.converged, "pulses={}", rep.pulses);
        assert!(rep.achieved_within(target, 0.05));
        assert!(rep.pulses > 0);
        assert!(rep.time_s > 0.0);
        assert!(rep.energy_j > 0.0);
    }

    #[test]
    fn already_at_target_needs_no_pulses() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer::new(p);
        let rep = prog.program(&mut d, p.g_off());
        assert!(rep.converged);
        assert_eq!(rep.pulses, 0);
        assert_eq!(rep.energy_j, 0.0);
    }

    #[test]
    fn programs_downward() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        d.set_state(0.9);
        let prog = PulseProgrammer::new(p);
        let target = 0.2 * p.g_on() + 0.8 * p.g_off();
        let rep = prog.program(&mut d, target);
        assert!(rep.converged);
        assert!(rep.achieved_within(target, 0.05));
    }

    #[test]
    fn out_of_range_target_is_clamped() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer::new(p);
        let rep = prog.program(&mut d, 10.0 * p.g_on());
        // Saturates at g_on (window slows near boundary; allow 5%).
        assert!(rep.final_conductance > 0.9 * p.g_on());
    }

    #[test]
    fn pulse_budget_respected() {
        let p = DeviceParams::default();
        let mut d = Memristor::new(p);
        let prog = PulseProgrammer {
            max_pulses: 3,
            ..PulseProgrammer::new(p)
        };
        let rep = prog.program(&mut d, p.g_on());
        assert!(!rep.converged);
        assert_eq!(rep.pulses, 3);
    }

    #[test]
    fn detect_flags_only_out_of_band_cells() {
        let target = [1.0, 2.0, 0.0, 4.0];
        // Cell 1 reads high beyond the 10% band; cell 3 reads dead.
        let observed = [1.05, 2.5, 0.0, 0.0];
        let map = FaultMap::detect(2, 2, &target, &observed, 0.10, 1e-9);
        assert_eq!(map.len(), 2);
        assert_eq!(map.entries()[0].row, 0);
        assert_eq!(map.entries()[0].col, 1);
        assert_eq!(map.entries()[0].class, FaultClass::StuckHigh);
        assert_eq!(map.entries()[1].row, 1);
        assert_eq!(map.entries()[1].col, 1);
        assert_eq!(map.entries()[1].class, FaultClass::StuckLow);
        assert!(!map.is_empty());
    }

    #[test]
    fn detect_identifies_dead_rows() {
        let target = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let observed = [1.0, 2.0, 3.0, 0.0, 0.0, 0.0];
        let map = FaultMap::detect(2, 3, &target, &observed, 0.05, 1e-9);
        assert_eq!(map.suspected_dead_rows(), vec![1]);
    }

    #[test]
    fn record_captures_unconverged_programs_in_row_major_order() {
        let p = DeviceParams::default();
        let prog = PulseProgrammer {
            max_pulses: 1,
            ..PulseProgrammer::new(p)
        };
        let mut map = FaultMap::new(2, 2);
        // Drive real devices with a starved pulse budget so verify fails.
        let mut d1 = Memristor::new(p);
        let r1 = prog.program(&mut d1, p.g_on());
        assert!(!r1.converged);
        map.record(&r1, 1, 1, p.g_on());
        let mut d0 = Memristor::new(p);
        let r0 = prog.program(&mut d0, p.g_on());
        map.record(&r0, 0, 0, p.g_on());
        assert_eq!(map.len(), 2);
        // Inserted out of order, stored row-major.
        assert_eq!((map.entries()[0].row, map.entries()[0].col), (0, 0));
        assert_eq!((map.entries()[1].row, map.entries()[1].col), (1, 1));
        assert_eq!(map.entries()[0].class, FaultClass::StuckLow);

        // A converged report is not recorded.
        let full = PulseProgrammer::new(p);
        let mut d2 = Memristor::new(p);
        let ok = full.program(&mut d2, 0.5 * (p.g_on() + p.g_off()));
        assert!(ok.converged);
        map.record(&ok, 0, 1, 0.5);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn finer_tolerance_needs_at_least_as_many_pulses() {
        let p = DeviceParams::default();
        let target = 0.5 * (p.g_on() + p.g_off());

        let mut d1 = Memristor::new(p);
        let coarse = PulseProgrammer {
            tolerance: 0.05,
            ..PulseProgrammer::new(p)
        };
        let r1 = coarse.program(&mut d1, target);

        let mut d2 = Memristor::new(p);
        let fine = PulseProgrammer {
            tolerance: 0.005,
            ..PulseProgrammer::new(p)
        };
        let r2 = fine.program(&mut d2, target);

        assert!(r2.pulses >= r1.pulses);
    }
}
