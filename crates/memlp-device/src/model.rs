use crate::params::DeviceParams;
use crate::window::Window;

/// A dynamic memristor model: current response plus state evolution.
///
/// Implementations advance the internal state `x ∈ [0, 1]` under an applied
/// voltage. The trait is object-safe so a [`crate::Memristor`] can hold any
/// model behind a `Box<dyn DynamicModel>`.
pub trait DynamicModel: std::fmt::Debug + Send + Sync {
    /// Instantaneous current through the device at state `x` under voltage `v`.
    fn current(&self, params: &DeviceParams, x: f64, v: f64) -> f64;

    /// State derivative `dx/dt` at state `x` under voltage `v`.
    fn state_derivative(&self, params: &DeviceParams, x: f64, v: f64) -> f64;

    /// Advances the state by `dt` seconds under constant voltage `v`,
    /// returning the new state. Default implementation is an RK2 (midpoint)
    /// step clamped to `[0, 1]`.
    fn step(&self, params: &DeviceParams, x: f64, v: f64, dt: f64) -> f64 {
        let k1 = self.state_derivative(params, x, v);
        let mid = (x + 0.5 * dt * k1).clamp(0.0, 1.0);
        let k2 = self.state_derivative(params, mid, v);
        (x + dt * k2).clamp(0.0, 1.0)
    }
}

/// The HP linear ion-drift model (paper §2.2, Eqn 4).
///
/// `M(x) = R_on·x + R_off·(1 − x)`, `dx/dt = µ_v·R_on/D² · i(t) · f(x)`,
/// with a hard voltage threshold: below `V_th` the device behaves as a pure
/// resistor (§2.3), which is what makes non-destructive reads and the
/// half-`V_dd` write-biasing scheme (§3.3) possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearIonDrift {
    /// Boundary window applied to the state derivative.
    pub window: Window,
}

impl LinearIonDrift {
    /// Creates the model with the given window.
    pub fn new(window: Window) -> Self {
        LinearIonDrift { window }
    }
}

impl Default for LinearIonDrift {
    fn default() -> Self {
        // Biolek window: unlike Joglekar it does not lock the state at the
        // boundaries (a device starting fully OFF must still be
        // programmable upward).
        LinearIonDrift {
            window: Window::Biolek { p: 2 },
        }
    }
}

impl DynamicModel for LinearIonDrift {
    fn current(&self, params: &DeviceParams, x: f64, v: f64) -> f64 {
        v / params.memristance(x)
    }

    fn state_derivative(&self, params: &DeviceParams, x: f64, v: f64) -> f64 {
        // Strictly-greater: a bias of exactly V_th (e.g. the V_dd/2
        // half-select level of §3.3) must not disturb the state.
        if v.abs() <= params.v_threshold {
            return 0.0;
        }
        let i = self.current(params, x, v);
        let k = params.mobility * params.r_on / (params.thickness * params.thickness);
        k * i * self.window.evaluate(x, i)
    }
}

/// A generalized threshold model in the style of Yakopcic et al., the
/// paper's timing/energy reference \[23\].
///
/// Current is a hyperbolic-sine function of voltage (electron tunnelling),
/// and the state only moves when the voltage magnitude exceeds the
/// threshold, with an exponential drive beyond it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Yakopcic {
    /// Current prefactor in the ON-most state, A.
    pub a1: f64,
    /// Current prefactor in the OFF-most state, A.
    pub a2: f64,
    /// Sinh slope, 1/V.
    pub b: f64,
    /// State-change rate prefactor, 1/s.
    pub eta: f64,
    /// Exponential sensitivity of the drive beyond threshold, 1/V.
    pub gamma: f64,
    /// Boundary window.
    pub window: Window,
}

impl Default for Yakopcic {
    fn default() -> Self {
        // Magnitudes chosen so read currents and write speeds are of the
        // same order as the LinearIonDrift defaults; see DESIGN.md §3 on
        // calibration.
        Yakopcic {
            a1: 4e-3,
            a2: 2.5e-5,
            b: 1.2,
            eta: 8e6,
            gamma: 4.0,
            window: Window::Biolek { p: 2 },
        }
    }
}

impl DynamicModel for Yakopcic {
    fn current(&self, _params: &DeviceParams, x: f64, v: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        let a = self.a1 * x + self.a2 * (1.0 - x);
        a * (self.b * v).sinh()
    }

    fn state_derivative(&self, params: &DeviceParams, x: f64, v: f64) -> f64 {
        if v.abs() <= params.v_threshold {
            return 0.0;
        }
        let drive = (self.gamma * (v.abs() - params.v_threshold)).exp_m1();
        let sign = v.signum();
        sign * self.eta * drive.max(0.0) * self.window.evaluate(x, sign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_resistor_below_threshold() {
        let p = DeviceParams::default();
        let m = LinearIonDrift::default();
        assert_eq!(m.state_derivative(&p, 0.5, 0.5 * p.v_threshold), 0.0);
        // Ohm's law at the read voltage.
        let i = m.current(&p, 0.5, p.v_read);
        assert!((i - p.v_read / p.memristance(0.5)).abs() < 1e-15);
    }

    #[test]
    fn drift_moves_state_above_threshold() {
        let p = DeviceParams::default();
        let m = LinearIonDrift::default();
        let x0 = 0.5;
        let x1 = m.step(&p, x0, p.v_write, p.pulse_width);
        assert!(
            x1 > x0,
            "positive write pulse should increase x: {x0} -> {x1}"
        );
        let x2 = m.step(&p, x0, -p.v_write, p.pulse_width);
        assert!(x2 < x0, "negative write pulse should decrease x");
    }

    #[test]
    fn drift_state_stays_in_bounds() {
        let p = DeviceParams::default();
        let m = LinearIonDrift::new(Window::None);
        let mut x = 0.9;
        for _ in 0..10_000 {
            x = m.step(&p, x, p.v_write, p.pulse_width);
        }
        assert!((0.0..=1.0).contains(&x));
        assert!(
            x > 0.99,
            "long positive drive should saturate near 1, got {x}"
        );
    }

    #[test]
    fn yakopcic_is_quiet_below_threshold() {
        let p = DeviceParams::default();
        let m = Yakopcic::default();
        assert_eq!(m.state_derivative(&p, 0.3, 0.9), 0.0);
    }

    #[test]
    fn yakopcic_current_monotone_in_state() {
        let p = DeviceParams::default();
        let m = Yakopcic::default();
        let lo = m.current(&p, 0.1, 0.3);
        let hi = m.current(&p, 0.9, 0.3);
        assert!(hi > lo, "more-ON device should carry more current");
    }

    #[test]
    fn yakopcic_polarity() {
        let p = DeviceParams::default();
        let m = Yakopcic::default();
        assert!(m.state_derivative(&p, 0.5, 2.0) > 0.0);
        assert!(m.state_derivative(&p, 0.5, -2.0) < 0.0);
        // Antisymmetric current.
        let ip = m.current(&p, 0.5, 0.4);
        let im = m.current(&p, 0.5, -0.4);
        assert!((ip + im).abs() < 1e-15);
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn DynamicModel>> = vec![
            Box::new(LinearIonDrift::default()),
            Box::new(Yakopcic::default()),
        ];
        let p = DeviceParams::default();
        for m in &models {
            let _ = m.step(&p, 0.5, 2.0, 1e-9);
        }
    }
}
