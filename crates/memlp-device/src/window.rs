/// Window functions for ion-drift memristor models.
///
/// A window function `f(x)` multiplies the state derivative so that dopant
/// drift slows near the film boundaries (`x = 0`, `x = 1`), keeping the
/// state physical. The literature's standard choices are provided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// No window: `f(x) = 1`. The raw HP model (paper Eqn 4); the state must
    /// then be clamped externally.
    None,
    /// Joglekar window `f(x) = 1 − (2x − 1)^{2p}`. Symmetric, zero exactly
    /// at the boundaries.
    Joglekar {
        /// Steepness exponent `p ≥ 1`; larger values approximate a hard clamp.
        p: u32,
    },
    /// Biolek window `f(x, i) = 1 − (x − step(−i))^{2p}`. Depends on current
    /// direction, which avoids the Joglekar window's boundary lock-up.
    Biolek {
        /// Steepness exponent `p ≥ 1`.
        p: u32,
    },
}

impl Window {
    /// Evaluates the window at state `x` for drift driven by current `i`
    /// (sign convention: positive current grows `x`).
    pub fn evaluate(&self, x: f64, i: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match *self {
            Window::None => 1.0,
            Window::Joglekar { p } => 1.0 - (2.0 * x - 1.0).powi(2 * p as i32),
            Window::Biolek { p } => {
                let step = if i >= 0.0 { 0.0 } else { 1.0 };
                1.0 - (x - step).powi(2 * p as i32)
            }
        }
    }
}

impl Default for Window {
    fn default() -> Self {
        Window::Joglekar { p: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unity_everywhere() {
        for &x in &[0.0, 0.3, 1.0] {
            assert_eq!(Window::None.evaluate(x, 1.0), 1.0);
        }
    }

    #[test]
    fn joglekar_vanishes_at_boundaries() {
        let w = Window::Joglekar { p: 2 };
        assert!(w.evaluate(0.0, 1.0).abs() < 1e-12);
        assert!(w.evaluate(1.0, 1.0).abs() < 1e-12);
        assert!((w.evaluate(0.5, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joglekar_symmetric() {
        let w = Window::Joglekar { p: 1 };
        assert!((w.evaluate(0.2, 1.0) - w.evaluate(0.8, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn biolek_depends_on_current_direction() {
        let w = Window::Biolek { p: 1 };
        // Near x=1, positive current (growing x) is suppressed...
        assert!(w.evaluate(1.0, 1.0).abs() < 1e-12);
        // ...but negative current (shrinking x) is not.
        assert!(w.evaluate(1.0, -1.0) > 0.9);
    }

    #[test]
    fn windows_bounded_zero_one() {
        for w in [
            Window::None,
            Window::Joglekar { p: 3 },
            Window::Biolek { p: 3 },
        ] {
            for k in 0..=10 {
                let x = k as f64 / 10.0;
                for &i in &[-1.0, 1.0] {
                    let v = w.evaluate(x, i);
                    assert!((0.0..=1.0).contains(&v), "{w:?} at x={x}, i={i} gave {v}");
                }
            }
        }
    }

    #[test]
    fn higher_p_is_flatter_in_the_middle() {
        let lo = Window::Joglekar { p: 1 }.evaluate(0.25, 1.0);
        let hi = Window::Joglekar { p: 4 }.evaluate(0.25, 1.0);
        assert!(hi > lo);
    }
}
