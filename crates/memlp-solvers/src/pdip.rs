//! Shared primal–dual interior-point machinery (paper §3.1).
//!
//! Both software baselines and the crossbar solvers in `memlp-core` iterate
//! the same outer loop: maintain strictly positive `(x, w, y, z)`, compute
//! step directions from a Newton system, damp them with the Eqn 11 step
//! length, and re-center with the Eqn 8 barrier parameter. This module owns
//! that outer loop's state so the solvers differ only in *how the Newton
//! system is solved* — which is exactly the paper's framing.

use memlp_linalg::ops;
use memlp_lp::{LpProblem, LpStatus};

/// Which digital factorization path solves the Newton system.
///
/// The dense path (blocked LU with partial pivoting) is the oracle every
/// other path is judged against; the sparse path (fill-reducing no-pivot LU
/// with symbolic-analysis reuse, see `memlp_linalg::SparseLu`) exploits the
/// structural sparsity of the constraint matrix and must agree with the
/// dense path to tight tolerance. `Auto` picks per problem by fill ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolvePath {
    /// Choose by constraint-matrix density: at or below
    /// [`SolvePath::AUTO_DENSITY_THRESHOLD`] the sparse path runs,
    /// otherwise dense.
    #[default]
    Auto,
    /// Always dense LU with partial pivoting.
    Dense,
    /// Always the fill-reducing sparse LU with symbolic reuse.
    Sparse,
}

impl SolvePath {
    /// Fill-ratio threshold for `Auto`: below a quarter fill the sparse
    /// factorization wins even after fill-in on the domains this workspace
    /// ships (see DESIGN.md §13 for the measured crossover).
    pub const AUTO_DENSITY_THRESHOLD: f64 = 0.25;

    /// Resolves the selector against a measured fill ratio: `true` means
    /// the sparse path runs.
    pub fn use_sparse(self, density: f64) -> bool {
        match self {
            SolvePath::Auto => density <= Self::AUTO_DENSITY_THRESHOLD,
            SolvePath::Dense => false,
            SolvePath::Sparse => true,
        }
    }
}

impl std::str::FromStr for SolvePath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(SolvePath::Auto),
            "dense" => Ok(SolvePath::Dense),
            "sparse" => Ok(SolvePath::Sparse),
            other => Err(format!(
                "unknown solve path '{other}' (expected auto, dense, or sparse)"
            )),
        }
    }
}

/// Why a Newton-core solve produced no directions.
///
/// `Singular` is the paper's §4.3 variation-induced failure mode (the
/// realized system lost rank; callers retry or classify). `CoreTooLarge`
/// is a *guard*, not a numerical event: the dense factorization would
/// need an allocation beyond the configured limit (e.g. the ~35 GB
/// `(n+m)²` core of assignment@512), so it refuses up front.
/// [`SolvePath::Auto`] falls back to the sparse core before this error
/// can surface; an explicit [`SolvePath::Dense`] reports it to the
/// caller instead of attempting the allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSolveError {
    /// The realized system is singular (or produced non-finite entries).
    Singular,
    /// The dense `(n+m)²` core would exceed the allocation guard.
    CoreTooLarge {
        /// Core dimension `n + m`.
        dim: usize,
        /// Bytes the dense core buffer would need (`8·dim²`).
        bytes: u64,
        /// The configured allocation limit in bytes.
        limit: u64,
    },
}

impl std::fmt::Display for CoreSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreSolveError::Singular => write!(f, "realized Newton system is singular"),
            CoreSolveError::CoreTooLarge { dim, bytes, limit } => write!(
                f,
                "dense Newton core of dimension {dim} needs {bytes} bytes \
                 (limit {limit}); use the sparse path"
            ),
        }
    }
}

impl std::error::Error for CoreSolveError {}

/// Options for PDIP iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdipOptions {
    /// Primal infeasibility tolerance `ε_b` (relative to `1 + ‖b‖∞`).
    pub eps_primal: f64,
    /// Dual infeasibility tolerance `ε_c` (relative to `1 + ‖c‖∞`).
    pub eps_dual: f64,
    /// Duality-gap tolerance `ε_g` (relative to `1 + |cᵀx|`).
    pub eps_gap: f64,
    /// Barrier reduction factor `δ ∈ (0, 1)` of Eqn 8.
    pub delta: f64,
    /// Step-length safety factor `r < 1` of Eqn 11.
    pub step_safety: f64,
    /// Iterate-magnitude bound `Ω` for infeasibility/unboundedness
    /// detection (§3.1: "constraints are infeasible if the element with the
    /// largest absolute value in x, y is greater than a certain enough
    /// large number").
    pub divergence_bound: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Initial value for every component of `(x, w, y, z)`.
    pub initial_value: f64,
    /// Interiority floor applied when warm-starting from a previous
    /// solution ([`PdipState::warm_start`]): every warm component is
    /// clamped to at least this value so the barrier path starts strictly
    /// interior even when the previous optimum sits on the boundary. The
    /// serving path and the PDHG warm starts share this one knob; larger
    /// values are more robust to stale iterates, smaller values preserve
    /// more of the warm information.
    pub warm_start_floor: f64,
    /// Which factorization path solves the Newton system (honored by the
    /// solvers that have a sparse formulation; purely-dense solvers ignore
    /// it).
    pub path: SolvePath,
}

impl Default for PdipOptions {
    fn default() -> Self {
        PdipOptions {
            eps_primal: 1e-8,
            eps_dual: 1e-8,
            eps_gap: 1e-8,
            delta: 0.1,
            step_safety: 0.9995,
            divergence_bound: 1e6,
            max_iterations: 200,
            initial_value: 1.0,
            warm_start_floor: 1e-2,
            path: SolvePath::Auto,
        }
    }
}

/// Step directions for one PDIP iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDirections {
    /// Δx (length n).
    pub dx: Vec<f64>,
    /// Δy (length m).
    pub dy: Vec<f64>,
    /// Δw (length m).
    pub dw: Vec<f64>,
    /// Δz (length n).
    pub dz: Vec<f64>,
}

/// The PDIP iterate `(x, w, y, z)` plus residual bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct PdipState {
    /// Primal variables (length n), strictly positive.
    pub x: Vec<f64>,
    /// Primal slacks (length m), strictly positive.
    pub w: Vec<f64>,
    /// Dual variables (length m), strictly positive.
    pub y: Vec<f64>,
    /// Dual slacks (length n), strictly positive.
    pub z: Vec<f64>,
}

/// What an iteration concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IterationOutcome {
    /// Keep iterating.
    Continue,
    /// All three §3.1 exit conditions met.
    Converged,
    /// `‖y‖∞` exceeded Ω: the dual is unbounded ⇒ primal infeasible.
    PrimalInfeasible,
    /// `‖x‖∞` exceeded Ω: the primal is unbounded (dual infeasible).
    PrimalUnbounded,
    /// NaN/∞ crept into the iterate.
    NumericalFailure,
}

impl PdipState {
    /// Initializes all variables to `opts.initial_value` (the paper
    /// initializes "as arbitrary vectors"; a strictly positive constant is
    /// the conventional choice).
    pub fn new(lp: &LpProblem, opts: &PdipOptions) -> Self {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let v = opts.initial_value;
        PdipState {
            x: vec![v; n],
            w: vec![v; m],
            y: vec![v; m],
            z: vec![v; n],
        }
    }

    /// Warm start from a previous solution of a *related* problem (same
    /// dimensions, typically only `b`/`c` changed): the primal/dual iterate
    /// is taken from `x0`/`y0` and the slacks are recomputed against the
    /// new data (`w = b − A·x`, `z = Aᵀy − c`), everything clamped to
    /// `floor` to restore strict interiority. A near-optimal previous
    /// iterate lands the barrier path steps from the new optimum, which is
    /// what lets a warm serving context answer repeat requests in a
    /// fraction of the cold iteration count.
    pub fn warm_start(lp: &LpProblem, x0: &[f64], y0: &[f64], floor: f64) -> Self {
        debug_assert_eq!(x0.len(), lp.num_vars());
        debug_assert_eq!(y0.len(), lp.num_constraints());
        let x: Vec<f64> = x0.iter().map(|&v| v.max(floor)).collect();
        let y: Vec<f64> = y0.iter().map(|&v| v.max(floor)).collect();
        let ax = lp.a().matvec(&x);
        let w: Vec<f64> = lp
            .b()
            .iter()
            .zip(&ax)
            .map(|(b, ax)| (b - ax).max(floor))
            .collect();
        let aty = lp.a().matvec_transposed(&y);
        let z: Vec<f64> = aty
            .iter()
            .zip(lp.c())
            .map(|(aty, c)| (aty - c).max(floor))
            .collect();
        PdipState { x, w, y, z }
    }

    /// Primal residual vector `b − A·x − w` (zero at primal feasibility).
    pub fn primal_residual(&self, lp: &LpProblem) -> Vec<f64> {
        let ax = lp.a().matvec(&self.x);
        lp.b()
            .iter()
            .zip(ax.iter().zip(&self.w))
            .map(|(b, (ax, w))| b - ax - w)
            .collect()
    }

    /// Dual residual vector `c − Aᵀ·y + z` (zero at dual feasibility).
    pub fn dual_residual(&self, lp: &LpProblem) -> Vec<f64> {
        let aty = lp.a().matvec_transposed(&self.y);
        lp.c()
            .iter()
            .zip(aty.iter().zip(&self.z))
            .map(|(c, (aty, z))| c - aty + z)
            .collect()
    }

    /// Duality gap `zᵀx + yᵀw` (§3.1).
    pub fn duality_gap(&self) -> f64 {
        ops::dot(&self.z, &self.x) + ops::dot(&self.y, &self.w)
    }

    /// Barrier parameter `µ = δ·(zᵀx + yᵀw)/(n + m)` (Eqn 8).
    pub fn mu(&self, delta: f64) -> f64 {
        delta * self.duality_gap() / (self.x.len() + self.y.len()) as f64
    }

    /// The Eqn 11 step length: `θ = r·min(max_ratio⁻¹, 1)` where
    /// `max_ratio = max(−Δv_i/v_i)` over every component of every variable.
    pub fn step_length(&self, dirs: &StepDirections, safety: f64) -> f64 {
        let mut max_ratio = 0.0f64;
        for (v, dv) in self
            .x
            .iter()
            .zip(&dirs.dx)
            .chain(self.y.iter().zip(&dirs.dy))
            .chain(self.w.iter().zip(&dirs.dw))
            .chain(self.z.iter().zip(&dirs.dz))
        {
            if *dv < 0.0 {
                max_ratio = max_ratio.max(-dv / v.max(f64::MIN_POSITIVE));
            }
        }
        if max_ratio <= 0.0 {
            return 1.0;
        }
        (safety / max_ratio).min(1.0)
    }

    /// Applies `v ← v + θ·Δv` to all four variables (Eqn 10), flooring at a
    /// tiny positive value to preserve strict interiority in the face of
    /// rounding.
    pub fn apply_step(&mut self, dirs: &StepDirections, theta: f64) {
        const FLOOR: f64 = 1e-14;
        for (v, dv) in self.x.iter_mut().zip(&dirs.dx) {
            *v = (*v + theta * dv).max(FLOOR);
        }
        for (v, dv) in self.y.iter_mut().zip(&dirs.dy) {
            *v = (*v + theta * dv).max(FLOOR);
        }
        for (v, dv) in self.w.iter_mut().zip(&dirs.dw) {
            *v = (*v + theta * dv).max(FLOOR);
        }
        for (v, dv) in self.z.iter_mut().zip(&dirs.dz) {
            *v = (*v + theta * dv).max(FLOOR);
        }
    }

    /// Evaluates the §3.1 exit tests: convergence, divergence
    /// (infeasible/unbounded certificates), or numerical failure.
    pub fn outcome(&self, lp: &LpProblem, opts: &PdipOptions) -> IterationOutcome {
        if !(ops::all_finite(&self.x)
            && ops::all_finite(&self.y)
            && ops::all_finite(&self.w)
            && ops::all_finite(&self.z))
        {
            return IterationOutcome::NumericalFailure;
        }
        if ops::inf_norm(&self.y) > opts.divergence_bound {
            return IterationOutcome::PrimalInfeasible;
        }
        if ops::inf_norm(&self.x) > opts.divergence_bound {
            return IterationOutcome::PrimalUnbounded;
        }
        let pr = ops::inf_norm(&self.primal_residual(lp)) / (1.0 + ops::inf_norm(lp.b()));
        let dr = ops::inf_norm(&self.dual_residual(lp)) / (1.0 + ops::inf_norm(lp.c()));
        let gap = self.duality_gap() / (1.0 + lp.objective(&self.x).abs());
        if pr <= opts.eps_primal && dr <= opts.eps_dual && gap <= opts.eps_gap {
            IterationOutcome::Converged
        } else {
            IterationOutcome::Continue
        }
    }

    /// Builds the final [`memlp_lp::LpSolution`] record for this state.
    pub fn into_solution(
        self,
        lp: &LpProblem,
        status: LpStatus,
        iterations: usize,
    ) -> memlp_lp::LpSolution {
        let primal_residual = ops::inf_norm(&self.primal_residual(lp));
        let dual_residual = ops::inf_norm(&self.dual_residual(lp));
        let duality_gap = self.duality_gap();
        let objective = lp.objective(&self.x);
        memlp_lp::LpSolution {
            status,
            objective,
            iterations,
            primal_residual,
            dual_residual,
            duality_gap,
            x: self.x,
            y: self.y,
        }
    }
}

/// Classifies a numerical breakdown: iterates that were already diverging
/// when the Newton solve failed are certificates of infeasibility or
/// unboundedness (the Newton system condition number blows up along the
/// divergent ray well before `‖·‖∞` reaches Ω).
pub fn classify_breakdown(state: &PdipState, _opts: &PdipOptions) -> LpStatus {
    // On an infeasible primal the duals diverge along a ray while x stays
    // bounded (and vice versa for an unbounded primal); a two-orders-of-
    // magnitude imbalance at breakdown is taken as the certificate.
    let ynorm = ops::inf_norm(&state.y);
    let xnorm = ops::inf_norm(&state.x);
    if ynorm > 100.0 * xnorm.max(1.0) {
        LpStatus::Infeasible
    } else if xnorm > 100.0 * ynorm.max(1.0) {
        LpStatus::Unbounded
    } else {
        LpStatus::NumericalFailure
    }
}

/// Maps an [`IterationOutcome`] to a terminal [`LpStatus`] (panics on
/// `Continue`, which is not terminal).
pub fn status_for(outcome: IterationOutcome) -> LpStatus {
    match outcome {
        IterationOutcome::Converged => LpStatus::Optimal,
        IterationOutcome::PrimalInfeasible => LpStatus::Infeasible,
        IterationOutcome::PrimalUnbounded => LpStatus::Unbounded,
        IterationOutcome::NumericalFailure => LpStatus::NumericalFailure,
        IterationOutcome::Continue => unreachable!("Continue is not a terminal outcome"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_linalg::Matrix;

    fn sample() -> LpProblem {
        LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn new_state_is_strictly_positive() {
        let lp = sample();
        let s = PdipState::new(&lp, &PdipOptions::default());
        assert!(s.x.iter().all(|&v| v > 0.0));
        assert!(s.w.iter().all(|&v| v > 0.0));
        assert_eq!(s.x.len(), 2);
        assert_eq!(s.y.len(), 2);
    }

    #[test]
    fn warm_start_is_strictly_positive_and_near_feasible() {
        let lp = sample();
        // Warm from the known optimum; slacks recomputed from the data.
        let s = PdipState::warm_start(&lp, &[1.6, 1.2], &[0.4, 0.2], 1e-2);
        for v in s.x.iter().chain(&s.w).chain(&s.y).chain(&s.z) {
            assert!(*v >= 1e-2);
        }
        // The recomputed slacks keep the primal residual at the floor scale.
        assert!(ops::inf_norm(&s.primal_residual(&lp)) <= 2e-2);
    }

    #[test]
    fn residuals_zero_at_feasible_points() {
        let lp = sample();
        let mut s = PdipState::new(&lp, &PdipOptions::default());
        // Force primal feasibility: x = (1,1), w = b − A·x = (1, 2).
        s.x = vec![1.0, 1.0];
        s.w = vec![1.0, 2.0];
        assert!(ops::inf_norm(&s.primal_residual(&lp)) < 1e-12);
        // Force dual feasibility: y = (1,1), z = Aᵀy − c = (3, 2).
        s.y = vec![1.0, 1.0];
        s.z = vec![3.0, 2.0];
        assert!(ops::inf_norm(&s.dual_residual(&lp)) < 1e-12);
    }

    #[test]
    fn mu_follows_eqn8() {
        let lp = sample();
        let s = PdipState::new(&lp, &PdipOptions::default());
        // all ones: gap = n + m = 4, so µ = δ·4/4 = δ.
        assert!((s.mu(0.1) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn step_length_full_when_directions_positive() {
        let lp = sample();
        let s = PdipState::new(&lp, &PdipOptions::default());
        let dirs = StepDirections {
            dx: vec![1.0, 1.0],
            dy: vec![0.5, 0.0],
            dw: vec![0.1, 0.1],
            dz: vec![0.0, 2.0],
        };
        assert_eq!(s.step_length(&dirs, 0.9995), 1.0);
    }

    #[test]
    fn step_length_blocks_at_boundary() {
        let lp = sample();
        let s = PdipState::new(&lp, &PdipOptions::default());
        // Δx = −2 on a variable at 1.0 → ratio 2 → θ = r/2.
        let dirs = StepDirections {
            dx: vec![-2.0, 0.0],
            dy: vec![0.0, 0.0],
            dw: vec![0.0, 0.0],
            dz: vec![0.0, 0.0],
        };
        let theta = s.step_length(&dirs, 0.9995);
        assert!((theta - 0.9995 / 2.0).abs() < 1e-12);
        // Applying it keeps positivity.
        let mut s2 = s.clone();
        s2.apply_step(&dirs, theta);
        assert!(s2.x[0] > 0.0);
    }

    #[test]
    fn outcome_detects_divergence() {
        let lp = sample();
        let opts = PdipOptions {
            divergence_bound: 10.0,
            ..Default::default()
        };
        let mut s = PdipState::new(&lp, &opts);
        s.y[0] = 100.0;
        assert_eq!(s.outcome(&lp, &opts), IterationOutcome::PrimalInfeasible);
        let mut s = PdipState::new(&lp, &opts);
        s.x[0] = 100.0;
        assert_eq!(s.outcome(&lp, &opts), IterationOutcome::PrimalUnbounded);
    }

    #[test]
    fn outcome_detects_nan() {
        let lp = sample();
        let opts = PdipOptions::default();
        let mut s = PdipState::new(&lp, &opts);
        s.z[1] = f64::NAN;
        assert_eq!(s.outcome(&lp, &opts), IterationOutcome::NumericalFailure);
    }

    #[test]
    fn outcome_converged_at_optimum() {
        let lp = sample();
        let opts = PdipOptions::default();
        // Optimum of the sample LP: x = (8/5, 6/5), obj = 14/5.
        // Duals: y from Aᵀy = c → y = (2/5, 1/5).
        let mut s = PdipState::new(&lp, &opts);
        s.x = vec![1.6, 1.2];
        s.w = vec![1e-12, 1e-12];
        s.y = vec![0.4, 0.2];
        s.z = vec![1e-12, 1e-12];
        assert_eq!(s.outcome(&lp, &opts), IterationOutcome::Converged);
    }

    #[test]
    fn status_mapping() {
        assert_eq!(status_for(IterationOutcome::Converged), LpStatus::Optimal);
        assert_eq!(
            status_for(IterationOutcome::PrimalInfeasible),
            LpStatus::Infeasible
        );
        assert_eq!(
            status_for(IterationOutcome::PrimalUnbounded),
            LpStatus::Unbounded
        );
        assert_eq!(
            status_for(IterationOutcome::NumericalFailure),
            LpStatus::NumericalFailure
        );
    }

    #[test]
    fn into_solution_carries_state() {
        let lp = sample();
        let s = PdipState::new(&lp, &PdipOptions::default());
        let sol = s.into_solution(&lp, LpStatus::IterationLimit, 42);
        assert_eq!(sol.iterations, 42);
        assert_eq!(sol.x.len(), 2);
        assert_eq!(sol.y.len(), 2);
        assert!((sol.objective - 2.0).abs() < 1e-12); // cᵀ(1,1)
    }
}
