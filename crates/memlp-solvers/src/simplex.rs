use memlp_lp::{LpProblem, LpSolution, LpStatus};

use crate::LpSolver;

/// A two-phase primal simplex solver (dense tableau, Bland's anti-cycling
/// rule).
///
/// §2.1 of the paper introduces simplex as the classical alternative to
/// interior-point methods; this implementation serves as an independent
/// correctness oracle for the PDIP solvers at small and medium sizes. It is
/// deliberately simple (dense tableau, Bland's rule) rather than fast.
///
/// # Example
///
/// ```
/// use memlp_lp::{generator::RandomLp, LpStatus};
/// use memlp_solvers::{LpSolver, Simplex};
///
/// let lp = RandomLp::paper(9, 4).feasible();
/// let sol = Simplex::default().solve(&lp);
/// assert_eq!(sol.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Simplex {
    /// Numerical tolerance for pivots and optimality tests.
    pub tolerance: f64,
    /// Maximum pivots across both phases.
    pub max_pivots: usize,
}

impl Default for Simplex {
    fn default() -> Self {
        Simplex {
            tolerance: 1e-9,
            max_pivots: 100_000,
        }
    }
}

struct Tableau {
    /// m rows × (cols + 1); the last column is the RHS.
    rows: Vec<Vec<f64>>,
    /// Objective row (`z_j − c_j` convention for maximization).
    zrow: Vec<f64>,
    /// Basis variable per row.
    basis: Vec<usize>,
    /// Rows that were negated while building phase 1 (flips dual signs).
    negated: Vec<bool>,
    n_struct: usize,
    n_slack: usize,
    n_art: usize,
    tol: f64,
}

enum PivotOutcome {
    Optimal,
    Unbounded,
    Progress,
}

impl Tableau {
    fn total_cols(&self) -> usize {
        self.n_struct + self.n_slack + self.n_art
    }

    /// One Bland-rule pivot. `allow` filters candidate entering columns.
    fn pivot_step(&mut self, allow: impl Fn(usize) -> bool) -> PivotOutcome {
        let cols = self.total_cols();
        // Entering: smallest index with negative reduced cost.
        let mut enter = None;
        for j in 0..cols {
            if allow(j) && self.zrow[j] < -self.tol {
                enter = Some(j);
                break;
            }
        }
        let Some(e) = enter else {
            return PivotOutcome::Optimal;
        };
        // Leaving: min ratio, ties by smallest basis variable (Bland).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..self.rows.len() {
            let a = self.rows[i][e];
            if a > self.tol {
                let ratio = self.rows[i][cols] / a;
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - self.tol
                            || ((ratio - lr).abs() <= self.tol && self.basis[i] < self.basis[li])
                        {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((l, _)) = leave else {
            return PivotOutcome::Unbounded;
        };
        self.do_pivot(l, e);
        PivotOutcome::Progress
    }

    fn do_pivot(&mut self, l: usize, e: usize) {
        let cols = self.total_cols();
        let p = self.rows[l][e];
        for v in self.rows[l].iter_mut() {
            *v /= p;
        }
        let pivot_row = self.rows[l].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i != l {
                let f = row[e];
                if f != 0.0 {
                    for (rv, pv) in row.iter_mut().zip(&pivot_row) {
                        *rv -= f * pv;
                    }
                }
            }
        }
        let f = self.zrow[e];
        if f != 0.0 {
            for (zv, pv) in self.zrow.iter_mut().zip(pivot_row.iter().take(cols + 1)) {
                *zv -= f * pv;
            }
        }
        self.basis[l] = e;
    }

    /// Rebuilds the objective row for costs `c` (length = total columns)
    /// and re-zeroes the basic columns.
    fn install_objective(&mut self, c: &[f64]) {
        let cols = self.total_cols();
        self.zrow = c.iter().map(|v| -v).collect();
        self.zrow.push(0.0);
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            let f = self.zrow[b];
            if f != 0.0 {
                let row = self.rows[i].clone();
                for (zv, rv) in self.zrow.iter_mut().zip(row.iter().take(cols + 1)) {
                    *zv -= f * rv;
                }
            }
        }
    }
}

impl Simplex {
    fn build_tableau(&self, lp: &LpProblem) -> Tableau {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        // Artificial variables only for rows with negative b.
        let art_rows: Vec<usize> = (0..m).filter(|&i| lp.b()[i] < 0.0).collect();
        let n_art = art_rows.len();
        let cols = n + m + n_art;

        let mut rows = Vec::with_capacity(m);
        let mut basis = vec![0usize; m];
        let mut negated = vec![false; m];
        let mut art_idx = 0;
        for i in 0..m {
            let mut row = vec![0.0; cols + 1];
            let flip = lp.b()[i] < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for (j, rj) in row.iter_mut().enumerate().take(n) {
                *rj = sgn * lp.a()[(i, j)];
            }
            row[n + i] = sgn; // slack
            row[cols] = sgn * lp.b()[i];
            if flip {
                row[n + m + art_idx] = 1.0;
                basis[i] = n + m + art_idx;
                negated[i] = true;
                art_idx += 1;
            } else {
                basis[i] = n + i;
            }
            rows.push(row);
        }
        Tableau {
            rows,
            zrow: vec![0.0; cols + 1],
            basis,
            negated,
            n_struct: n,
            n_slack: m,
            n_art,
            tol: self.tolerance,
        }
    }
}

impl LpSolver for Simplex {
    fn solve(&self, lp: &LpProblem) -> LpSolution {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let mut t = self.build_tableau(lp);
        let cols = t.total_cols();
        let mut pivots = 0usize;

        // ---- Phase 1: drive artificials to zero (maximize −Σ artificials).
        if t.n_art > 0 {
            let mut c1 = vec![0.0; cols];
            c1[n + m..cols].fill(-1.0);
            t.install_objective(&c1);
            loop {
                if pivots >= self.max_pivots {
                    return LpSolution::failed(LpStatus::IterationLimit, pivots);
                }
                match t.pivot_step(|_| true) {
                    PivotOutcome::Optimal => break,
                    PivotOutcome::Unbounded => {
                        // Phase-1 objective is bounded by 0; cannot happen.
                        return LpSolution::failed(LpStatus::NumericalFailure, pivots);
                    }
                    PivotOutcome::Progress => pivots += 1,
                }
            }
            // Phase-1 optimum = −Σ artificials; z value is in zrow[cols].
            let phase1 = t.zrow[cols];
            if phase1 < -self.tolerance * 10.0 {
                return LpSolution::failed(LpStatus::Infeasible, pivots);
            }
            // Pivot any artificial still basic (at zero) out of the basis.
            for i in 0..m {
                if t.basis[i] >= n + m {
                    if let Some(e) = (0..n + m).find(|&j| t.rows[i][j].abs() > self.tolerance) {
                        t.do_pivot(i, e);
                        pivots += 1;
                    }
                    // If no pivot exists the row is redundant; the basic
                    // artificial stays at value 0 and never re-enters.
                }
            }
        }

        // ---- Phase 2: real objective, artificial columns banned.
        let mut c2 = vec![0.0; cols];
        c2[..n].copy_from_slice(lp.c());
        t.install_objective(&c2);
        loop {
            if pivots >= self.max_pivots {
                return LpSolution::failed(LpStatus::IterationLimit, pivots);
            }
            match t.pivot_step(|j| j < n + m) {
                PivotOutcome::Optimal => break,
                PivotOutcome::Unbounded => return LpSolution::failed(LpStatus::Unbounded, pivots),
                PivotOutcome::Progress => pivots += 1,
            }
        }

        // Extract primal solution.
        let mut x = vec![0.0; n];
        for i in 0..m {
            if t.basis[i] < n {
                x[t.basis[i]] = t.rows[i][cols];
            }
        }
        // Duals from slack reduced costs (sign-corrected for negated rows).
        let mut y = vec![0.0; m];
        for (i, yi) in y.iter_mut().enumerate() {
            let v = t.zrow[n + i];
            *yi = if t.negated[i] { -v } else { v };
        }
        let objective = lp.objective(&x);
        // Residual diagnostics mirroring the PDIP exit quantities.
        let ax = lp.a().matvec(&x);
        let primal_residual = ax
            .iter()
            .zip(lp.b())
            .map(|(l, r)| (l - r).max(0.0))
            .fold(0.0f64, f64::max);
        let dual_obj: f64 = lp.b().iter().zip(&y).map(|(b, yi)| b * yi).sum();
        LpSolution {
            status: LpStatus::Optimal,
            x,
            y,
            objective,
            iterations: pivots,
            primal_residual,
            dual_residual: 0.0,
            duality_gap: (dual_obj - objective).abs(),
        }
    }

    fn name(&self) -> &'static str {
        "simplex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_linalg::Matrix;
    use memlp_lp::generator::RandomLp;

    fn lp_2x2() -> LpProblem {
        LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn solves_known_2x2() {
        let sol = Simplex::default().solve(&lp_2x2());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective - 2.8).abs() < 1e-9,
            "objective {}",
            sol.objective
        );
        assert!((sol.x[0] - 1.6).abs() < 1e-9);
        assert!((sol.x[1] - 1.2).abs() < 1e-9);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        let lp = lp_2x2();
        let sol = Simplex::default().solve(&lp);
        let dual_obj: f64 = lp.b().iter().zip(&sol.y).map(|(b, y)| b * y).sum();
        assert!((dual_obj - sol.objective).abs() < 1e-9);
        assert!(sol.y.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn detects_unbounded() {
        // max x, no binding constraint on x.
        let lp =
            LpProblem::new(Matrix::from_rows(&[&[-1.0]]).unwrap(), vec![1.0], vec![1.0]).unwrap();
        assert_eq!(Simplex::default().solve(&lp).status, LpStatus::Unbounded);
    }

    #[test]
    fn detects_infeasible() {
        // x ≤ 1 and −x ≤ −3 (x ≥ 3).
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
            vec![1.0, -3.0],
            vec![1.0],
        )
        .unwrap();
        assert_eq!(Simplex::default().solve(&lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn handles_negative_b_feasible() {
        // −x0 − x1 ≤ −1 (x0 + x1 ≥ 1), x0 ≤ 2, x1 ≤ 2, max x0 + x1 → 4.
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[-1.0, -1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap(),
            vec![-1.0, 2.0, 2.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = Simplex::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_pdip_on_random_instances() {
        use crate::NormalEqPdip;
        for seed in 0..8 {
            let lp = RandomLp::paper(15, 200 + seed).feasible();
            let s = Simplex::default().solve(&lp);
            let p = NormalEqPdip::default().solve(&lp);
            assert_eq!(s.status, LpStatus::Optimal, "simplex failed on seed {seed}");
            assert_eq!(p.status, LpStatus::Optimal, "pdip failed on seed {seed}");
            let rel = (s.objective - p.objective).abs() / (1.0 + s.objective.abs());
            assert!(
                rel < 1e-6,
                "seed {seed}: simplex {} vs pdip {}",
                s.objective,
                p.objective
            );
        }
    }

    #[test]
    fn agrees_on_infeasible_instances() {
        for seed in 0..4 {
            let lp = RandomLp::paper(10, 300 + seed).infeasible();
            assert_eq!(
                Simplex::default().solve(&lp).status,
                LpStatus::Infeasible,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn solution_is_feasible() {
        let lp = RandomLp::paper(30, 17).feasible();
        let sol = Simplex::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.x, 1e-7));
    }

    #[test]
    fn degenerate_square_lp() {
        // All-zero objective: any feasible vertex is optimal.
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(),
            vec![1.0],
            vec![0.0, 0.0],
        )
        .unwrap();
        let sol = Simplex::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, 0.0);
    }
}
