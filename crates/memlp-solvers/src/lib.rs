#![forbid(unsafe_code)]
//! Software LP solver baselines for the `memlp` workspace.
//!
//! The paper's evaluation (§4) compares the memristor crossbar solvers
//! against two software references, both reproduced here, plus an
//! independent correctness oracle:
//!
//! * [`DensePdip`] — the primal–dual interior-point method solving the full
//!   `2(n+m)` Newton system (Eqn 12) by LU factorization each iteration.
//!   This is the paper's "PDIP implemented in Matlab" baseline with
//!   O(N³)-per-iteration complexity (§3.5).
//! * [`NormalEqPdip`] — the same PDIP iteration reduced to `m×m` normal
//!   equations, the standard high-performance formulation; this is the
//!   workspace's stand-in for **Matlab `linprog`** (see DESIGN.md §3 on
//!   substitutions) and the accuracy reference for every relative-error
//!   figure.
//! * [`Simplex`] — a two-phase primal simplex (§2.1's classical
//!   alternative), used as an independent cross-check at small sizes.
//! * [`PdhgSolver`] — a restarted primal–dual hybrid gradient method
//!   (first-order, matrix-free: one MVM with `A` and one with `Aᵀ` per
//!   iteration), the scale regime past the dense Newton-core wall; see
//!   [`pdhg`] for the iteration and the operator abstraction the analog
//!   path plugs into.
//!
//! All solvers consume [`memlp_lp::LpProblem`] (canonical
//! `max cᵀx, Ax ⪯ b, x ⪰ 0`) and produce [`memlp_lp::LpSolution`].
//!
//! # Example
//!
//! ```
//! use memlp_lp::{generator::RandomLp, LpStatus};
//! use memlp_solvers::{LpSolver, NormalEqPdip};
//!
//! let lp = RandomLp::paper(16, 7).feasible();
//! let solution = NormalEqPdip::default().solve(&lp);
//! assert_eq!(solution.status, LpStatus::Optimal);
//! ```

mod pdip_dense;
mod pdip_mehrotra;
mod pdip_normal;
mod simplex;

pub mod budget;
pub mod pdhg;
pub mod pdip;

pub use budget::{Budget, BudgetCause, Deadline, IterationDeadline};
pub use pdhg::{PdhgOptions, PdhgSolver};
pub use pdip::{PdipOptions, SolvePath};
pub use pdip_dense::DensePdip;
pub use pdip_mehrotra::MehrotraPdip;
pub use pdip_normal::NormalEqPdip;
pub use simplex::Simplex;

use memlp_lp::{LpProblem, LpSolution};

/// A linear program solver.
///
/// Object-safe so benches can iterate over a heterogeneous baseline set.
pub trait LpSolver {
    /// Solves the canonical-form problem.
    fn solve(&self, lp: &LpProblem) -> LpSolution;

    /// Solves under an iteration [`Budget`], polled once per Newton
    /// iteration. On a budget exit the best-so-far iterate is returned
    /// with `LpStatus::IterationLimit` and the triggering [`BudgetCause`];
    /// with [`Budget::none`] the behaviour (and bit pattern) of
    /// [`LpSolver::solve`] is preserved exactly. Solvers without
    /// cooperative checks (e.g. simplex) ignore the budget.
    fn solve_budgeted(
        &self,
        lp: &LpProblem,
        budget: Budget<'_>,
    ) -> (LpSolution, Option<BudgetCause>) {
        let _ = budget;
        (self.solve(lp), None)
    }

    /// Short human-readable name for tables and logs.
    fn name(&self) -> &'static str;
}
