use memlp_linalg::{iterative, ops, LuFactors, Matrix};
use memlp_lp::{LpProblem, LpSolution, LpStatus};

use crate::pdip::{status_for, IterationOutcome, PdipOptions, PdipState, StepDirections};
use crate::LpSolver;

/// PDIP with the Newton system reduced to `m×m` **normal equations** — the
/// standard high-performance software formulation and this workspace's
/// stand-in for Matlab `linprog` (accuracy reference + CPU baseline).
///
/// Reduction (eliminating Δz, Δw, then Δx from Eqns 9a–9d):
///
/// ```text
/// Δz = X⁻¹(µe − XZe) − X⁻¹Z·Δx
/// Δw = Y⁻¹(µe − YWe) − Y⁻¹W·Δy
/// (A·Z⁻¹X·Aᵀ + Y⁻¹W)·Δy = A·Z⁻¹X·σ̂ − ρ̂
/// Δx = Z⁻¹X·(σ̂ − Aᵀ·Δy)
/// ```
///
/// with `σ̂ = σ + X⁻¹µe − z` and `ρ̂ = ρ − Y⁻¹µe + w`, where
/// `ρ = b − Ax − w` and `σ = c − Aᵀy + z`.
///
/// # Example
///
/// ```
/// use memlp_lp::{generator::RandomLp, LpStatus};
/// use memlp_solvers::{LpSolver, NormalEqPdip};
///
/// let lp = RandomLp::paper(12, 1).feasible();
/// let sol = NormalEqPdip::default().solve(&lp);
/// assert_eq!(sol.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalEqPdip {
    /// Iteration options.
    pub options: PdipOptions,
}

/// Per-solve factorization scratch: the `m×m` LU working copy and the
/// pivot vector are recycled across iterations instead of reallocated.
#[derive(Debug, Clone, Default)]
struct NormalScratch {
    lu: Matrix,
    piv: Vec<usize>,
}

impl NormalEqPdip {
    /// Creates the solver with explicit options.
    pub fn new(options: PdipOptions) -> Self {
        NormalEqPdip { options }
    }

    fn directions(
        lp: &LpProblem,
        s: &PdipState,
        mu: f64,
        scratch: &mut NormalScratch,
    ) -> Option<StepDirections> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let a = lp.a();

        let rho = s.primal_residual(lp);
        let sigma = s.dual_residual(lp);

        // σ̂ = σ + µX⁻¹e − z;  ρ̂ = ρ − µY⁻¹e + w.
        let sigma_hat: Vec<f64> = (0..n).map(|j| sigma[j] + mu / s.x[j] - s.z[j]).collect();
        let rho_hat: Vec<f64> = (0..m).map(|i| rho[i] - mu / s.y[i] + s.w[i]).collect();

        // D = Z⁻¹X (diagonal), E = Y⁻¹W (diagonal).
        let d: Vec<f64> = (0..n).map(|j| s.x[j] / s.z[j]).collect();
        let e: Vec<f64> = (0..m).map(|i| s.w[i] / s.y[i]).collect();

        // Normal matrix N = A·D·Aᵀ + E (A·D·Aᵀ via the threaded gram
        // kernel — the dominant per-iteration cost at O(m²n)).
        let mut nmat = a.scaled_gram(&d);
        for i in 0..m {
            nmat[(i, i)] += e[i];
        }
        // Tiny static regularization keeps the factorization alive when a
        // diverging dual drives e_i → 0 on linearly dependent rows (the
        // infeasible-detection path); far below solution accuracy.
        let reg = 1e-12 * (1.0 + nmat.max_abs());
        for i in 0..m {
            nmat[(i, i)] += reg;
        }

        // RHS: A·D·σ̂ − ρ̂.
        let dsig: Vec<f64> = (0..n).map(|j| d[j] * sigma_hat[j]).collect();
        let adsig = a.matvec(&dsig);
        let rhs: Vec<f64> = (0..m).map(|i| adsig[i] - rho_hat[i]).collect();

        // LU solve polished by two rounds of iterative refinement: the
        // normal matrix grows ill-conditioned as µ → 0, and the reference
        // solver should deliver the full double-precision digits the
        // crossbar solutions are judged against. Refinement needs the
        // unfactored matrix too, so the factorization works on the
        // scratch's recycled working copy rather than a fresh clone.
        let mut work = std::mem::take(&mut scratch.lu);
        if work.rows() != m || work.cols() != m {
            work = Matrix::zeros(m, m);
        }
        work.as_mut_slice().copy_from_slice(nmat.as_slice());
        let piv = std::mem::take(&mut scratch.piv);
        let lu = LuFactors::factor_reusing(work, piv).ok()?;
        let dy = iterative::refine(&nmat, &lu, &rhs, 2).ok().map(|r| r.x);
        let (work, piv) = lu.into_parts();
        scratch.lu = work;
        scratch.piv = piv;
        let dy = dy?;

        // Δx = D·(σ̂ − Aᵀ·Δy).
        let atdy = a.matvec_transposed(&dy);
        let dx: Vec<f64> = (0..n).map(|j| d[j] * (sigma_hat[j] - atdy[j])).collect();
        // Δz = µX⁻¹e − z − X⁻¹Z·Δx.
        let dz: Vec<f64> = (0..n)
            .map(|j| mu / s.x[j] - s.z[j] - s.z[j] / s.x[j] * dx[j])
            .collect();
        // Δw = µY⁻¹e − w − Y⁻¹W·Δy.
        let dw: Vec<f64> = (0..m)
            .map(|i| mu / s.y[i] - s.w[i] - s.w[i] / s.y[i] * dy[i])
            .collect();

        if !(ops::all_finite(&dx)
            && ops::all_finite(&dy)
            && ops::all_finite(&dw)
            && ops::all_finite(&dz))
        {
            return None;
        }
        Some(StepDirections { dx, dy, dw, dz })
    }
}

impl LpSolver for NormalEqPdip {
    fn solve(&self, lp: &LpProblem) -> LpSolution {
        let opts = &self.options;
        let mut state = PdipState::new(lp, opts);
        let mut scratch = NormalScratch::default();

        for iter in 0..opts.max_iterations {
            match state.outcome(lp, opts) {
                IterationOutcome::Continue => {}
                terminal => return state.into_solution(lp, status_for(terminal), iter),
            }
            let mu = state.mu(opts.delta);
            let dirs = match Self::directions(lp, &state, mu, &mut scratch) {
                Some(d) => d,
                None => {
                    let status = crate::pdip::classify_breakdown(&state, opts);
                    return state.into_solution(lp, status, iter);
                }
            };
            let theta = state.step_length(&dirs, opts.step_safety);
            state.apply_step(&dirs, theta);
        }
        let status = match state.outcome(lp, opts) {
            IterationOutcome::Continue => LpStatus::IterationLimit,
            terminal => status_for(terminal),
        };
        state.into_solution(lp, status, opts.max_iterations)
    }

    fn name(&self) -> &'static str {
        "pdip-normal-eq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_linalg::Matrix;
    use memlp_lp::generator::RandomLp;

    #[test]
    fn solves_known_2x2() {
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = NormalEqPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.8).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_dense_pdip() {
        use crate::DensePdip;
        for seed in 0..5 {
            let lp = RandomLp::paper(21, 100 + seed).feasible();
            let a = NormalEqPdip::default().solve(&lp);
            let b = DensePdip::default().solve(&lp);
            assert_eq!(a.status, LpStatus::Optimal);
            assert_eq!(b.status, LpStatus::Optimal);
            let rel = (a.objective - b.objective).abs() / (1.0 + a.objective.abs());
            assert!(
                rel < 1e-6,
                "seed {seed}: {} vs {}",
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn solves_medium_random() {
        let lp = RandomLp::paper(96, 7).feasible();
        let sol = NormalEqPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal, "{sol}");
        assert!(lp.is_feasible(&sol.x, 1e-5));
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let inf = RandomLp::paper(16, 9).infeasible();
        assert_eq!(
            NormalEqPdip::default().solve(&inf).status,
            LpStatus::Infeasible
        );
        let unb = RandomLp::paper(16, 9).unbounded();
        assert_eq!(
            NormalEqPdip::default().solve(&unb).status,
            LpStatus::Unbounded
        );
    }

    #[test]
    fn residuals_reported_small_at_optimum() {
        let lp = RandomLp::paper(32, 13).feasible();
        let sol = NormalEqPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.primal_residual < 1e-6);
        assert!(sol.dual_residual < 1e-6);
        assert!(sol.duality_gap < 1e-4);
    }
}
