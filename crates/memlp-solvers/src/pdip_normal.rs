use memlp_linalg::{iterative, ops, LuFactors, Matrix, SparseLu, SparseMatrix};
use memlp_lp::{LpProblem, LpSolution, LpStatus};

use crate::budget::{Budget, BudgetCause};
use crate::pdip::{status_for, IterationOutcome, PdipOptions, PdipState, StepDirections};
use crate::LpSolver;

/// PDIP with the Newton system reduced to `m×m` **normal equations** — the
/// standard high-performance software formulation and this workspace's
/// stand-in for Matlab `linprog` (accuracy reference + CPU baseline).
///
/// Reduction (eliminating Δz, Δw, then Δx from Eqns 9a–9d):
///
/// ```text
/// Δz = X⁻¹(µe − XZe) − X⁻¹Z·Δx
/// Δw = Y⁻¹(µe − YWe) − Y⁻¹W·Δy
/// (A·Z⁻¹X·Aᵀ + Y⁻¹W)·Δy = A·Z⁻¹X·σ̂ − ρ̂
/// Δx = Z⁻¹X·(σ̂ − Aᵀ·Δy)
/// ```
///
/// with `σ̂ = σ + X⁻¹µe − z` and `ρ̂ = ρ − Y⁻¹µe + w`, where
/// `ρ = b − Ax − w` and `σ = c − Aᵀy + z`.
///
/// When [`PdipOptions::path`] resolves to sparse (always, or by the `Auto`
/// density threshold), the same reduction is solved in its **quasidefinite
/// KKT form** instead of forming `A·D·Aᵀ` densely:
///
/// ```text
/// ⎡ D⁻¹  Aᵀ ⎤ ⎡Δx⎤   ⎡σ̂⎤          D = Z⁻¹X,  E = Y⁻¹W
/// ⎣ A   −E  ⎦ ⎣Δy⎦ = ⎣ρ̂⎦
/// ```
///
/// The KKT pattern is fixed for the whole solve — only the two diagonals
/// move between iterations — so the fill-reducing symbolic analysis runs
/// once and every iteration is a numeric refactor (`memlp_linalg::SparseLu`).
/// Any sparse breakdown (static pivot failure) falls back to the dense
/// normal equations for that iteration, keeping the solver total.
///
/// # Example
///
/// ```
/// use memlp_lp::{generator::RandomLp, LpStatus};
/// use memlp_solvers::{LpSolver, NormalEqPdip};
///
/// let lp = RandomLp::paper(12, 1).feasible();
/// let sol = NormalEqPdip::default().solve(&lp);
/// assert_eq!(sol.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalEqPdip {
    /// Iteration options.
    pub options: PdipOptions,
}

/// Per-solve factorization scratch: the `m×m` LU working copy and the
/// pivot vector are recycled across iterations instead of reallocated.
#[derive(Debug, Clone, Default)]
struct NormalScratch {
    lu: Matrix,
    piv: Vec<usize>,
    sparse: Option<SparseKkt>,
}

/// Sparse-path scratch: the assembled KKT matrix (pattern fixed per solve,
/// diagonal values rewritten each iteration) and the reusable symbolic
/// factorization.
#[derive(Debug, Clone)]
struct SparseKkt {
    kkt: SparseMatrix,
    /// Storage slot of `(j, j)` for each variable `j` (the `D⁻¹` diagonal).
    dx_slots: Vec<usize>,
    /// Storage slot of `(n+i, n+i)` for each constraint `i` (the `−E`
    /// diagonal).
    dy_slots: Vec<usize>,
    lu: SparseLu,
}

impl SparseKkt {
    /// Assembles `[[D⁻¹, Aᵀ], [A, −E]]` with unit diagonals as
    /// placeholders and runs the one-off symbolic analysis.
    fn build(lp: &LpProblem) -> Option<SparseKkt> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let a = lp.sparse_a();
        let mut trips = Vec::with_capacity(2 * a.nnz() + n + m);
        for j in 0..n {
            trips.push((j, j, 1.0));
        }
        for i in 0..m {
            trips.push((n + i, n + i, -1.0));
        }
        for (i, j, v) in a.iter() {
            trips.push((n + i, j, v));
            trips.push((j, n + i, v));
        }
        let kkt = SparseMatrix::from_triplets(n + m, n + m, &trips).ok()?;
        let dx_slots: Vec<usize> = (0..n)
            .map(|j| kkt.entry_index(j, j))
            .collect::<Option<_>>()?;
        let dy_slots: Vec<usize> = (0..m)
            .map(|i| kkt.entry_index(n + i, n + i))
            .collect::<Option<_>>()?;
        let lu = SparseLu::analyze(&kkt).ok()?;
        Some(SparseKkt {
            kkt,
            dx_slots,
            dy_slots,
            lu,
        })
    }

    /// Writes the iteration's diagonals (`D⁻¹ = Z X⁻¹`, `−E = −W Y⁻¹`) and
    /// refactors on the cached symbolic analysis.
    fn refactor(&mut self, s: &PdipState) -> Result<(), memlp_linalg::LinalgError> {
        let vals = self.kkt.values_mut();
        for (j, &slot) in self.dx_slots.iter().enumerate() {
            vals[slot] = s.z[j] / s.x[j];
        }
        for (i, &slot) in self.dy_slots.iter().enumerate() {
            vals[slot] = -s.w[i] / s.y[i];
        }
        self.lu.refactor(&self.kkt)
    }
}

impl NormalEqPdip {
    /// Creates the solver with explicit options.
    pub fn new(options: PdipOptions) -> Self {
        NormalEqPdip { options }
    }

    fn directions(
        lp: &LpProblem,
        s: &PdipState,
        mu: f64,
        scratch: &mut NormalScratch,
        use_sparse: bool,
    ) -> Option<StepDirections> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let a = lp.a();

        let rho = s.primal_residual(lp);
        let sigma = s.dual_residual(lp);

        // σ̂ = σ + µX⁻¹e − z;  ρ̂ = ρ − µY⁻¹e + w.
        let sigma_hat: Vec<f64> = (0..n).map(|j| sigma[j] + mu / s.x[j] - s.z[j]).collect();
        let rho_hat: Vec<f64> = (0..m).map(|i| rho[i] - mu / s.y[i] + s.w[i]).collect();

        if use_sparse {
            if let Some(dirs) = Self::sparse_directions(lp, s, mu, &sigma_hat, &rho_hat, scratch) {
                return Some(dirs);
            }
            // Static-pivot breakdown: fall through to the dense oracle for
            // this iteration.
        }

        // D = Z⁻¹X (diagonal), E = Y⁻¹W (diagonal).
        let d: Vec<f64> = (0..n).map(|j| s.x[j] / s.z[j]).collect();
        let e: Vec<f64> = (0..m).map(|i| s.w[i] / s.y[i]).collect();

        // Normal matrix N = A·D·Aᵀ + E (A·D·Aᵀ via the threaded gram
        // kernel — the dominant per-iteration cost at O(m²n)).
        let mut nmat = a.scaled_gram(&d);
        for i in 0..m {
            nmat[(i, i)] += e[i];
        }
        // Tiny static regularization keeps the factorization alive when a
        // diverging dual drives e_i → 0 on linearly dependent rows (the
        // infeasible-detection path); far below solution accuracy.
        let reg = 1e-12 * (1.0 + nmat.max_abs());
        for i in 0..m {
            nmat[(i, i)] += reg;
        }

        // RHS: A·D·σ̂ − ρ̂.
        let dsig: Vec<f64> = (0..n).map(|j| d[j] * sigma_hat[j]).collect();
        let adsig = a.matvec(&dsig);
        let rhs: Vec<f64> = (0..m).map(|i| adsig[i] - rho_hat[i]).collect();

        // LU solve polished by two rounds of iterative refinement: the
        // normal matrix grows ill-conditioned as µ → 0, and the reference
        // solver should deliver the full double-precision digits the
        // crossbar solutions are judged against. Refinement needs the
        // unfactored matrix too, so the factorization works on the
        // scratch's recycled working copy rather than a fresh clone.
        let mut work = std::mem::take(&mut scratch.lu);
        if work.rows() != m || work.cols() != m {
            work = Matrix::zeros(m, m);
        }
        work.as_mut_slice().copy_from_slice(nmat.as_slice());
        let piv = std::mem::take(&mut scratch.piv);
        let lu = LuFactors::factor_reusing(work, piv).ok()?;
        let dy = iterative::refine(&nmat, &lu, &rhs, 2).ok().map(|r| r.x);
        let (work, piv) = lu.into_parts();
        scratch.lu = work;
        scratch.piv = piv;
        let dy = dy?;

        // Δx = D·(σ̂ − Aᵀ·Δy).
        let atdy = a.matvec_transposed(&dy);
        let dx: Vec<f64> = (0..n).map(|j| d[j] * (sigma_hat[j] - atdy[j])).collect();
        // Δz = µX⁻¹e − z − X⁻¹Z·Δx.
        let dz: Vec<f64> = (0..n)
            .map(|j| mu / s.x[j] - s.z[j] - s.z[j] / s.x[j] * dx[j])
            .collect();
        // Δw = µY⁻¹e − w − Y⁻¹W·Δy.
        let dw: Vec<f64> = (0..m)
            .map(|i| mu / s.y[i] - s.w[i] - s.w[i] / s.y[i] * dy[i])
            .collect();

        if !(ops::all_finite(&dx)
            && ops::all_finite(&dy)
            && ops::all_finite(&dw)
            && ops::all_finite(&dz))
        {
            return None;
        }
        Some(StepDirections { dx, dy, dw, dz })
    }

    /// The sparse quasidefinite-KKT solve: symbolic analysis cached in the
    /// scratch, numeric refactor + refined triangular solves per iteration.
    /// Returns `None` on any sparse breakdown (caller falls back to dense).
    fn sparse_directions(
        lp: &LpProblem,
        s: &PdipState,
        mu: f64,
        sigma_hat: &[f64],
        rho_hat: &[f64],
        scratch: &mut NormalScratch,
    ) -> Option<StepDirections> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        if scratch.sparse.is_none() {
            scratch.sparse = Some(SparseKkt::build(lp)?);
        }
        let sk = scratch.sparse.as_mut()?;
        sk.refactor(s).ok()?;

        let mut rhs = Vec::with_capacity(n + m);
        rhs.extend_from_slice(sigma_hat);
        rhs.extend_from_slice(rho_hat);
        // Two refinement rounds against the exact KKT matrix, mirroring the
        // dense path: the static-pivot factors lose digits the refinement
        // recovers, keeping both paths at reference accuracy.
        let sol = sk.lu.refine(&sk.kkt, &rhs, 2).ok()?;
        let (dx, dy) = sol.split_at(n);

        // Δz = µX⁻¹e − z − X⁻¹Z·Δx;  Δw = µY⁻¹e − w − Y⁻¹W·Δy.
        let dz: Vec<f64> = (0..n)
            .map(|j| mu / s.x[j] - s.z[j] - s.z[j] / s.x[j] * dx[j])
            .collect();
        let dw: Vec<f64> = (0..m)
            .map(|i| mu / s.y[i] - s.w[i] - s.w[i] / s.y[i] * dy[i])
            .collect();

        if !(ops::all_finite(dx)
            && ops::all_finite(dy)
            && ops::all_finite(&dw)
            && ops::all_finite(&dz))
        {
            return None;
        }
        Some(StepDirections {
            dx: dx.to_vec(),
            dy: dy.to_vec(),
            dw,
            dz,
        })
    }
}

impl LpSolver for NormalEqPdip {
    fn solve(&self, lp: &LpProblem) -> LpSolution {
        self.solve_budgeted(lp, Budget::none()).0
    }

    fn solve_budgeted(
        &self,
        lp: &LpProblem,
        budget: Budget<'_>,
    ) -> (LpSolution, Option<BudgetCause>) {
        let opts = &self.options;
        let mut state = PdipState::new(lp, opts);
        let mut scratch = NormalScratch::default();
        let use_sparse = opts.path.use_sparse(lp.density());

        for iter in 0..opts.max_iterations {
            match state.outcome(lp, opts) {
                IterationOutcome::Continue => {}
                terminal => return (state.into_solution(lp, status_for(terminal), iter), None),
            }
            if let Some(cause) = budget.check(iter) {
                let sol = state.into_solution(lp, LpStatus::IterationLimit, iter);
                return (sol, Some(cause));
            }
            let mu = state.mu(opts.delta);
            let dirs = match Self::directions(lp, &state, mu, &mut scratch, use_sparse) {
                Some(d) => d,
                None => {
                    let status = crate::pdip::classify_breakdown(&state, opts);
                    return (state.into_solution(lp, status, iter), None);
                }
            };
            let theta = state.step_length(&dirs, opts.step_safety);
            state.apply_step(&dirs, theta);
        }
        let status = match state.outcome(lp, opts) {
            IterationOutcome::Continue => LpStatus::IterationLimit,
            terminal => status_for(terminal),
        };
        (state.into_solution(lp, status, opts.max_iterations), None)
    }

    fn name(&self) -> &'static str {
        "pdip-normal-eq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_linalg::Matrix;
    use memlp_lp::generator::RandomLp;

    #[test]
    fn solves_known_2x2() {
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = NormalEqPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.8).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_dense_pdip() {
        use crate::DensePdip;
        for seed in 0..5 {
            let lp = RandomLp::paper(21, 100 + seed).feasible();
            let a = NormalEqPdip::default().solve(&lp);
            let b = DensePdip::default().solve(&lp);
            assert_eq!(a.status, LpStatus::Optimal);
            assert_eq!(b.status, LpStatus::Optimal);
            let rel = (a.objective - b.objective).abs() / (1.0 + a.objective.abs());
            assert!(
                rel < 1e-6,
                "seed {seed}: {} vs {}",
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn solves_medium_random() {
        let lp = RandomLp::paper(96, 7).feasible();
        let sol = NormalEqPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal, "{sol}");
        assert!(lp.is_feasible(&sol.x, 1e-5));
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let inf = RandomLp::paper(16, 9).infeasible();
        assert_eq!(
            NormalEqPdip::default().solve(&inf).status,
            LpStatus::Infeasible
        );
        let unb = RandomLp::paper(16, 9).unbounded();
        assert_eq!(
            NormalEqPdip::default().solve(&unb).status,
            LpStatus::Unbounded
        );
    }

    #[test]
    fn sparse_path_matches_dense_path_on_domain_lps() {
        use crate::pdip::SolvePath;
        use memlp_lp::domains::{transportation_lp, TransportationProblem};
        for seed in 0..3 {
            let lp = transportation_lp(&TransportationProblem::random(4, 9, seed)).unwrap();
            let dense = NormalEqPdip::new(PdipOptions {
                path: SolvePath::Dense,
                ..PdipOptions::default()
            })
            .solve(&lp);
            let sparse = NormalEqPdip::new(PdipOptions {
                path: SolvePath::Sparse,
                ..PdipOptions::default()
            })
            .solve(&lp);
            assert_eq!(dense.status, LpStatus::Optimal);
            assert_eq!(sparse.status, LpStatus::Optimal);
            let rel = (dense.objective - sparse.objective).abs() / (1.0 + dense.objective.abs());
            assert!(rel < 1e-7, "seed {seed}: rel {rel:.3e}");
            assert_eq!(
                dense.iterations, sparse.iterations,
                "seed {seed}: iterate counts diverged"
            );
        }
    }

    #[test]
    fn auto_path_picks_sparse_for_sparse_problems() {
        use crate::pdip::SolvePath;
        // Transport at 4×9 has density 2/13 < 0.25 → Auto runs sparse;
        // RandomLp is fully dense → Auto runs dense. Both must still solve.
        use memlp_lp::domains::{transportation_lp, TransportationProblem};
        let sparse_lp = transportation_lp(&TransportationProblem::random(4, 9, 3)).unwrap();
        assert!(SolvePath::Auto.use_sparse(sparse_lp.density()));
        let dense_lp = RandomLp::paper(16, 3).feasible();
        assert!(!SolvePath::Auto.use_sparse(dense_lp.density()));
        assert_eq!(
            NormalEqPdip::default().solve(&sparse_lp).status,
            LpStatus::Optimal
        );
        assert_eq!(
            NormalEqPdip::default().solve(&dense_lp).status,
            LpStatus::Optimal
        );
    }

    #[test]
    fn residuals_reported_small_at_optimum() {
        let lp = RandomLp::paper(32, 13).feasible();
        let sol = NormalEqPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.primal_residual < 1e-6);
        assert!(sol.dual_residual < 1e-6);
        assert!(sol.duality_gap < 1e-4);
    }
}
