use memlp_linalg::{ops, LuFactors};
use memlp_lp::{LpProblem, LpSolution, LpStatus};

use crate::budget::{Budget, BudgetCause};
use crate::pdip::{
    classify_breakdown, status_for, IterationOutcome, PdipOptions, PdipState, StepDirections,
};
use crate::LpSolver;

/// Mehrotra's predictor–corrector PDIP — the algorithm behind essentially
/// every production interior-point LP code (and Matlab's `linprog`
/// interior-point mode).
///
/// Each iteration factors the normal matrix **once** and back-solves twice:
///
/// 1. **predictor** (affine scaling, µ = 0) — measures how much progress a
///    pure Newton step on the complementarity conditions could make;
/// 2. **corrector** — re-centres with `σ = (µ_aff/µ)³` and compensates the
///    predictor's second-order error `ΔX_aff·ΔZ_aff·e`.
///
/// Compared with the single-step [`crate::NormalEqPdip`] it typically
/// converges in noticeably fewer iterations. It exists here as a baseline
/// extension: the paper's crossbar formulation maps the *plain* PDIP
/// iteration (Eqns 9–11), whose per-iteration structure is what the
/// hardware exploits.
///
/// # Example
///
/// ```
/// use memlp_lp::{generator::RandomLp, LpStatus};
/// use memlp_solvers::{LpSolver, MehrotraPdip};
///
/// let lp = RandomLp::paper(12, 5).feasible();
/// let sol = MehrotraPdip::default().solve(&lp);
/// assert_eq!(sol.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MehrotraPdip {
    /// Iteration options (`delta` is unused — σ is chosen adaptively).
    pub options: PdipOptions,
}

struct Reduction {
    lu: LuFactors,
    d: Vec<f64>, // X/Z
    rho: Vec<f64>,
    sigma: Vec<f64>,
}

impl MehrotraPdip {
    /// Creates the solver with explicit options.
    pub fn new(options: PdipOptions) -> Self {
        MehrotraPdip { options }
    }

    /// Factors the normal matrix `A·(X/Z)·Aᵀ + W/Y` for the current state.
    fn factor(lp: &LpProblem, s: &PdipState) -> Option<Reduction> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let a = lp.a();
        let d: Vec<f64> = (0..n).map(|j| s.x[j] / s.z[j]).collect();
        let e: Vec<f64> = (0..m).map(|i| s.w[i] / s.y[i]).collect();
        // A·D·Aᵀ via the threaded gram kernel, then the E diagonal.
        let mut nmat = a.scaled_gram(&d);
        for i in 0..m {
            nmat[(i, i)] += e[i];
        }
        let reg = 1e-12 * (1.0 + nmat.max_abs());
        for i in 0..m {
            nmat[(i, i)] += reg;
        }
        let lu = LuFactors::factor(nmat).ok()?;
        Some(Reduction {
            lu,
            d,
            rho: s.primal_residual(lp),
            sigma: s.dual_residual(lp),
        })
    }

    /// Back-solves the reduced system for given complementarity targets:
    /// `Z·Δx + X·Δz = comp_xz`, `W·Δy + Y·Δw = comp_yw`.
    fn directions(
        lp: &LpProblem,
        s: &PdipState,
        red: &Reduction,
        comp_xz: &[f64],
        comp_yw: &[f64],
    ) -> Option<StepDirections> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let a = lp.a();
        let sigma_hat: Vec<f64> = (0..n).map(|j| red.sigma[j] + comp_xz[j] / s.x[j]).collect();
        let rho_hat: Vec<f64> = (0..m).map(|i| red.rho[i] - comp_yw[i] / s.y[i]).collect();
        let dsig: Vec<f64> = (0..n).map(|j| red.d[j] * sigma_hat[j]).collect();
        let adsig = a.matvec(&dsig);
        let rhs: Vec<f64> = (0..m).map(|i| adsig[i] - rho_hat[i]).collect();
        let dy = red.lu.solve(&rhs).ok()?;
        let atdy = a.matvec_transposed(&dy);
        let dx: Vec<f64> = (0..n)
            .map(|j| red.d[j] * (sigma_hat[j] - atdy[j]))
            .collect();
        let dz: Vec<f64> = (0..n)
            .map(|j| (comp_xz[j] - s.z[j] * dx[j]) / s.x[j])
            .collect();
        let dw: Vec<f64> = (0..m)
            .map(|i| (comp_yw[i] - s.w[i] * dy[i]) / s.y[i])
            .collect();
        if !(ops::all_finite(&dx)
            && ops::all_finite(&dy)
            && ops::all_finite(&dw)
            && ops::all_finite(&dz))
        {
            return None;
        }
        Some(StepDirections { dx, dy, dw, dz })
    }
}

impl LpSolver for MehrotraPdip {
    fn solve(&self, lp: &LpProblem) -> LpSolution {
        self.solve_budgeted(lp, Budget::none()).0
    }

    fn solve_budgeted(
        &self,
        lp: &LpProblem,
        budget: Budget<'_>,
    ) -> (LpSolution, Option<BudgetCause>) {
        let opts = &self.options;
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let mut state = PdipState::new(lp, opts);

        for iter in 0..opts.max_iterations {
            match state.outcome(lp, opts) {
                IterationOutcome::Continue => {}
                terminal => return (state.into_solution(lp, status_for(terminal), iter), None),
            }
            if let Some(cause) = budget.check(iter) {
                let sol = state.into_solution(lp, LpStatus::IterationLimit, iter);
                return (sol, Some(cause));
            }
            let Some(red) = Self::factor(lp, &state) else {
                let status = classify_breakdown(&state, opts);
                return (state.into_solution(lp, status, iter), None);
            };

            // Predictor: pure affine step (µ = 0).
            let comp_xz_aff: Vec<f64> = (0..n).map(|j| -state.x[j] * state.z[j]).collect();
            let comp_yw_aff: Vec<f64> = (0..m).map(|i| -state.y[i] * state.w[i]).collect();
            let Some(aff) = Self::directions(lp, &state, &red, &comp_xz_aff, &comp_yw_aff) else {
                let status = classify_breakdown(&state, opts);
                return (state.into_solution(lp, status, iter), None);
            };
            let alpha_aff = state.step_length(&aff, 1.0);

            // Adaptive centring: σ = (µ_aff / µ)³.
            let mu = state.duality_gap() / (n + m) as f64;
            let mut gap_aff = 0.0;
            for j in 0..n {
                gap_aff +=
                    (state.x[j] + alpha_aff * aff.dx[j]) * (state.z[j] + alpha_aff * aff.dz[j]);
            }
            for i in 0..m {
                gap_aff +=
                    (state.y[i] + alpha_aff * aff.dy[i]) * (state.w[i] + alpha_aff * aff.dw[i]);
            }
            let mu_aff = gap_aff / (n + m) as f64;
            let sigma_c = (mu_aff / mu.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0).powi(3);

            // Corrector: recentre and cancel the predictor's second-order
            // complementarity error.
            let comp_xz: Vec<f64> = (0..n)
                .map(|j| sigma_c * mu - state.x[j] * state.z[j] - aff.dx[j] * aff.dz[j])
                .collect();
            let comp_yw: Vec<f64> = (0..m)
                .map(|i| sigma_c * mu - state.y[i] * state.w[i] - aff.dy[i] * aff.dw[i])
                .collect();
            let Some(dirs) = Self::directions(lp, &state, &red, &comp_xz, &comp_yw) else {
                let status = classify_breakdown(&state, opts);
                return (state.into_solution(lp, status, iter), None);
            };
            let theta = state.step_length(&dirs, opts.step_safety);
            state.apply_step(&dirs, theta);
        }
        let status = match state.outcome(lp, opts) {
            IterationOutcome::Continue => LpStatus::IterationLimit,
            terminal => status_for(terminal),
        };
        (state.into_solution(lp, status, opts.max_iterations), None)
    }

    fn name(&self) -> &'static str {
        "pdip-mehrotra"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NormalEqPdip;
    use memlp_linalg::Matrix;
    use memlp_lp::generator::RandomLp;

    #[test]
    fn solves_known_2x2() {
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = MehrotraPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.8).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_single_step_pdip() {
        for seed in 0..6 {
            let lp = RandomLp::paper(30, 400 + seed).feasible();
            let a = MehrotraPdip::default().solve(&lp);
            let b = NormalEqPdip::default().solve(&lp);
            assert_eq!(a.status, LpStatus::Optimal, "seed {seed}");
            assert_eq!(b.status, LpStatus::Optimal, "seed {seed}");
            let rel = (a.objective - b.objective).abs() / (1.0 + b.objective.abs());
            assert!(
                rel < 1e-6,
                "seed {seed}: {} vs {}",
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn needs_fewer_iterations_than_single_step() {
        let mut wins = 0;
        let total = 6;
        for seed in 0..total {
            let lp = RandomLp::paper(60, 500 + seed).feasible();
            let a = MehrotraPdip::default().solve(&lp);
            let b = NormalEqPdip::default().solve(&lp);
            assert!(
                a.status.is_optimal() && b.status.is_optimal(),
                "seed {seed}"
            );
            if a.iterations < b.iterations {
                wins += 1;
            }
        }
        assert!(
            wins >= total - 1,
            "Mehrotra won only {wins}/{total} iteration races"
        );
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let inf = RandomLp::paper(16, 21).infeasible();
        assert_eq!(
            MehrotraPdip::default().solve(&inf).status,
            LpStatus::Infeasible
        );
        let unb = RandomLp::paper(16, 21).unbounded();
        assert_eq!(
            MehrotraPdip::default().solve(&unb).status,
            LpStatus::Unbounded
        );
    }

    #[test]
    fn residuals_tight_at_optimum() {
        let lp = RandomLp::paper(40, 23).feasible();
        let sol = MehrotraPdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.primal_residual < 1e-6);
        assert!(sol.dual_residual < 1e-6);
    }
}
