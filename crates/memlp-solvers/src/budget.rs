//! Iteration budgets and cooperative cancellation for the PDIP loops.
//!
//! A long-running caller (the `memlp-serve` daemon, or `memlp solve
//! --max-iters/--timeout-iters`) needs a solve that stops *cooperatively* —
//! once per Newton iteration, at a point where the iterate is a coherent
//! best-so-far answer — rather than hanging on a stalling instance. The
//! [`Budget`] carries two independent limits:
//!
//! * `max_iters` — a deterministic cap on Newton iterations spent, counted
//!   across every re-solve attempt of a crossbar solve.
//! * a [`Deadline`] — an externally owned cancellation source, polled once
//!   per iteration. The deterministic [`IterationDeadline`] expires after a
//!   fixed number of polls (what tests and the single-threaded serve path
//!   use); a wall-clock implementation lives in `memlp-serve`, keeping
//!   `Instant` out of the solver crates entirely (the workspace determinism
//!   rules ban it here).
//!
//! A budget exit is **degradation, not failure**: the solver returns the
//! best feasible iterate it reached with
//! [`LpStatus::IterationLimit`](memlp_lp::LpStatus) plus an out-of-band
//! [`BudgetCause`] telling the caller *why* the loop stopped early. An
//! unlimited budget ([`Budget::none`]) makes every check a no-op, so the
//! plumbing cannot perturb existing solves — fault-free runs are bitwise
//! identical with or without it.

use std::cell::Cell;
use std::fmt;

/// A cooperative cancellation source, polled once per Newton iteration.
///
/// Implementations must be cheap and side-effect-free apart from their own
/// bookkeeping; the solvers poll before starting an iteration's work.
pub trait Deadline {
    /// `true` once the deadline has passed; the current iteration is not
    /// started and the solve returns its best iterate.
    fn expired(&self) -> bool;
}

/// A deterministic [`Deadline`]: expires after a fixed number of polls.
///
/// Because the solvers poll exactly once per Newton iteration, `ticks`
/// reads as "this many more iterations across the whole solve" — attempts
/// included — which makes budget behaviour reproducible in tests and in
/// the single-threaded serve path, independent of machine speed.
#[derive(Debug)]
pub struct IterationDeadline {
    remaining: Cell<usize>,
}

impl IterationDeadline {
    /// A deadline that allows `ticks` more polls before expiring.
    pub fn new(ticks: usize) -> Self {
        IterationDeadline {
            remaining: Cell::new(ticks),
        }
    }

    /// Polls left before expiry.
    pub fn remaining(&self) -> usize {
        self.remaining.get()
    }
}

impl Deadline for IterationDeadline {
    fn expired(&self) -> bool {
        let left = self.remaining.get();
        if left == 0 {
            return true;
        }
        self.remaining.set(left - 1);
        false
    }
}

/// Why a budgeted solve stopped before converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetCause {
    /// The `max_iters` cap on Newton iterations was reached.
    MaxIters,
    /// The [`Deadline`] expired.
    DeadlineExceeded,
}

impl fmt::Display for BudgetCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetCause::MaxIters => write!(f, "iteration budget exhausted"),
            BudgetCause::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// An iteration budget threaded through the PDIP loops.
///
/// Copyable and cheap: the deadline is borrowed, so one budget can be
/// handed to every attempt of a crossbar solve while the caller keeps
/// ownership of the cancellation source.
#[derive(Clone, Copy, Default)]
pub struct Budget<'a> {
    max_iters: Option<usize>,
    deadline: Option<&'a dyn Deadline>,
}

impl<'a> Budget<'a> {
    /// The unlimited budget: every check is a no-op.
    pub const fn none() -> Self {
        Budget {
            max_iters: None,
            deadline: None,
        }
    }

    /// Caps total Newton iterations (across re-solve attempts) at `n`.
    pub fn with_max_iters(mut self, n: usize) -> Self {
        self.max_iters = Some(n);
        self
    }

    /// Attaches a cancellation source, polled once per iteration.
    pub fn with_deadline(mut self, deadline: &'a dyn Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// `true` when no limit is set (the checks cannot fire).
    pub fn is_unlimited(&self) -> bool {
        self.max_iters.is_none() && self.deadline.is_none()
    }

    /// Polls the budget with `spent` iterations already executed. Returns
    /// the cause if the next iteration must not start. The `max_iters` cap
    /// is checked first so an exactly-simultaneous expiry reports the
    /// deterministic cause.
    pub fn check(&self, spent: usize) -> Option<BudgetCause> {
        if let Some(cap) = self.max_iters {
            if spent >= cap {
                return Some(BudgetCause::MaxIters);
            }
        }
        if let Some(d) = self.deadline {
            if d.expired() {
                return Some(BudgetCause::DeadlineExceeded);
            }
        }
        None
    }
}

impl fmt::Debug for Budget<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("max_iters", &self.max_iters)
            .field("has_deadline", &self.deadline.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fires() {
        let b = Budget::none();
        assert!(b.is_unlimited());
        for spent in [0, 1, 10_000] {
            assert_eq!(b.check(spent), None);
        }
    }

    #[test]
    fn max_iters_cap_fires_at_the_cap() {
        let b = Budget::none().with_max_iters(3);
        assert_eq!(b.check(0), None);
        assert_eq!(b.check(2), None);
        assert_eq!(b.check(3), Some(BudgetCause::MaxIters));
        assert_eq!(b.check(100), Some(BudgetCause::MaxIters));
    }

    #[test]
    fn iteration_deadline_expires_after_ticks() {
        let d = IterationDeadline::new(2);
        let b = Budget::none().with_deadline(&d);
        assert_eq!(b.check(0), None);
        assert_eq!(b.check(1), None);
        assert_eq!(b.check(2), Some(BudgetCause::DeadlineExceeded));
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn max_iters_wins_a_simultaneous_expiry() {
        let d = IterationDeadline::new(0);
        let b = Budget::none().with_max_iters(0).with_deadline(&d);
        assert_eq!(b.check(0), Some(BudgetCause::MaxIters));
    }

    #[test]
    fn causes_display() {
        assert_eq!(
            BudgetCause::MaxIters.to_string(),
            "iteration budget exhausted"
        );
        assert_eq!(
            BudgetCause::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
    }
}
