use memlp_linalg::{LuFactors, Matrix};
use memlp_lp::{LpProblem, LpSolution, LpStatus};

use crate::budget::{Budget, BudgetCause};
use crate::pdip::{status_for, IterationOutcome, PdipOptions, PdipState, StepDirections};
use crate::LpSolver;

/// The PDIP method solving the **full** `2(n+m)` Newton system (Eqn 12) by
/// LU decomposition every iteration.
///
/// This reproduces the paper's "PDIP implemented in Matlab" baseline: §3.5
/// attributes O(N³)-per-iteration complexity to exactly this formulation.
/// Use [`crate::NormalEqPdip`] when you want the fast software reference.
///
/// # Example
///
/// ```
/// use memlp_lp::{generator::RandomLp, LpStatus};
/// use memlp_solvers::{DensePdip, LpSolver};
///
/// let lp = RandomLp::paper(8, 3).feasible();
/// let sol = DensePdip::default().solve(&lp);
/// assert_eq!(sol.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DensePdip {
    /// Iteration options.
    pub options: PdipOptions,
}

impl DensePdip {
    /// Creates the solver with explicit options.
    pub fn new(options: PdipOptions) -> Self {
        DensePdip { options }
    }

    /// Assembles the Eqn 12 block matrix for the current iterate:
    ///
    /// ```text
    /// ⎡ A   0   I   0 ⎤ ⎡Δx⎤   ⎡ b − Ax − w  ⎤
    /// ⎢ 0   Aᵀ  0  −I ⎥ ⎢Δy⎥ = ⎢ c − Aᵀy + z ⎥
    /// ⎢ Z   0   0   X ⎥ ⎢Δw⎥   ⎢ µe − XZe    ⎥
    /// ⎣ 0   W   Y   0 ⎦ ⎣Δz⎦   ⎣ µe − YWe    ⎦
    /// ```
    fn newton_matrix(lp: &LpProblem, s: &PdipState) -> Matrix {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let dim = 2 * (n + m);
        let mut k = Matrix::zeros(dim, dim);
        // Column offsets: Δx at 0, Δy at n, Δw at n+m, Δz at n+2m.
        let (ox, oy, ow, oz) = (0, n, n + m, n + 2 * m);
        // Row block 1 (m rows): A·Δx + Δw.
        k.set_block(0, ox, lp.a());
        k.set_diag_block(0, ow, &vec![1.0; m]);
        // Row block 2 (n rows): Aᵀ·Δy − Δz.
        k.set_block(m, oy, &lp.a().transpose());
        k.set_diag_block(m, oz, &vec![-1.0; n]);
        // Row block 3 (n rows): Z·Δx + X·Δz.
        k.set_diag_block(m + n, ox, &s.z);
        k.set_diag_block(m + n, oz, &s.x);
        // Row block 4 (m rows): W·Δy + Y·Δw.
        k.set_diag_block(m + 2 * n, oy, &s.w);
        k.set_diag_block(m + 2 * n, ow, &s.y);
        k
    }

    fn newton_rhs(lp: &LpProblem, s: &PdipState, mu: f64) -> Vec<f64> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let mut r = Vec::with_capacity(2 * (n + m));
        r.extend(s.primal_residual(lp));
        r.extend(s.dual_residual(lp));
        r.extend(s.x.iter().zip(&s.z).map(|(x, z)| mu - x * z));
        r.extend(s.y.iter().zip(&s.w).map(|(y, w)| mu - y * w));
        r
    }
}

impl LpSolver for DensePdip {
    fn solve(&self, lp: &LpProblem) -> LpSolution {
        self.solve_budgeted(lp, Budget::none()).0
    }

    fn solve_budgeted(
        &self,
        lp: &LpProblem,
        budget: Budget<'_>,
    ) -> (LpSolution, Option<BudgetCause>) {
        let opts = &self.options;
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let mut state = PdipState::new(lp, opts);

        for iter in 0..opts.max_iterations {
            match state.outcome(lp, opts) {
                IterationOutcome::Continue => {}
                terminal => return (state.into_solution(lp, status_for(terminal), iter), None),
            }
            if let Some(cause) = budget.check(iter) {
                let sol = state.into_solution(lp, LpStatus::IterationLimit, iter);
                return (sol, Some(cause));
            }
            let mu = state.mu(opts.delta);
            let k = Self::newton_matrix(lp, &state);
            let rhs = Self::newton_rhs(lp, &state, mu);
            let delta = match LuFactors::factor(k).and_then(|lu| lu.solve(&rhs)) {
                Ok(d) => d,
                Err(_) => {
                    let status = crate::pdip::classify_breakdown(&state, opts);
                    return (state.into_solution(lp, status, iter), None);
                }
            };
            let dirs = StepDirections {
                dx: delta[..n].to_vec(),
                dy: delta[n..n + m].to_vec(),
                dw: delta[n + m..n + 2 * m].to_vec(),
                dz: delta[n + 2 * m..].to_vec(),
            };
            let theta = state.step_length(&dirs, opts.step_safety);
            state.apply_step(&dirs, theta);
        }
        let status = match state.outcome(lp, opts) {
            IterationOutcome::Continue => LpStatus::IterationLimit,
            terminal => status_for(terminal),
        };
        (state.into_solution(lp, status, opts.max_iterations), None)
    }

    fn name(&self) -> &'static str {
        "pdip-dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_lp::generator::RandomLp;

    #[test]
    fn solves_known_2x2() {
        // max x0 + x1 s.t. x0 + 2x1 ≤ 4, 3x0 + x1 ≤ 6 → x* = (8/5, 6/5).
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = DensePdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective - 2.8).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.x[0] - 1.6).abs() < 1e-5);
        assert!((sol.x[1] - 1.2).abs() < 1e-5);
    }

    #[test]
    fn solves_random_feasible() {
        for seed in 0..5 {
            let lp = RandomLp::paper(24, seed).feasible();
            let sol = DensePdip::default().solve(&lp);
            assert_eq!(sol.status, LpStatus::Optimal, "seed {seed}: {sol}");
            assert!(
                lp.is_feasible(&sol.x, 1e-5),
                "seed {seed} solution infeasible"
            );
        }
    }

    #[test]
    fn strong_duality_holds_at_optimum() {
        let lp = RandomLp::paper(18, 11).feasible();
        let sol = DensePdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        let dual_obj: f64 = lp.b().iter().zip(&sol.y).map(|(b, y)| b * y).sum();
        assert!(
            (sol.objective - dual_obj).abs() / (1.0 + sol.objective.abs()) < 1e-5,
            "primal {} vs dual {}",
            sol.objective,
            dual_obj
        );
    }

    #[test]
    fn detects_infeasible() {
        let lp = RandomLp::paper(12, 3).infeasible();
        let sol = DensePdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Infeasible, "{sol}");
    }

    #[test]
    fn detects_unbounded() {
        let lp = RandomLp::paper(12, 5).unbounded();
        let sol = DensePdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Unbounded, "{sol}");
    }

    #[test]
    fn iteration_counts_are_moderate() {
        // IPMs should converge in tens of iterations, not hundreds.
        let lp = RandomLp::paper(48, 2).feasible();
        let sol = DensePdip::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.iterations < 100, "took {} iterations", sol.iterations);
    }
}
