//! Restarted primal–dual hybrid gradient (PDHG) for the canonical LP.
//!
//! The third solver family of the workspace: where both PDIP paths pay a
//! per-iteration Newton factorization, PDHG needs only one MVM with `A`
//! and one with `Aᵀ` per iteration — exactly the operation a memristor
//! crossbar (or the CSR microkernels) accelerates — and O(nnz) working
//! memory, so it keeps solving past the dense-core allocation wall.
//!
//! For `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` the saddle-point form is
//! `min_x max_{y≥0} −cᵀx + yᵀ(Ax − b)` and the iteration is
//!
//! ```text
//! x⁺ = max(0, x + τ·(c − Aᵀy))        primal proximal step
//! x̄  = 2x⁺ − x                        primal extrapolation
//! y⁺ = max(0, y + σ·(Ax̄ − b))         dual proximal step
//! ```
//!
//! with `τ = 1/(ω·‖A‖₂)` and `σ = ω/‖A‖₂` so that `τσ‖A‖² ≤ 1` (the
//! convergence condition), `‖A‖₂` from the deterministic power-iteration
//! estimate in [`memlp_linalg::norm_est`], and the primal weight `ω`
//! re-balanced at restarts toward the observed movement ratio
//! `‖Δy‖/‖Δx‖` (the PDLP adaptive rule: when the dual has farther to
//! travel, buy it bigger steps). Restarts jump to the better of the current
//! iterate and the running restart-window average whenever the KKT score
//! has decayed sufficiently, which upgrades plain PDHG's O(1/k) tail to
//! the linear rate LPs admit.
//!
//! Termination matches the PDIP exit tests component-for-component: the
//! same relative primal/dual/gap tolerances (shared with
//! [`PdipOptions`]), the same `Ω` divergence bound mapped to the same
//! infeasible/unbounded certificates, and the same budget-degradation
//! contract (`Budget::none` preserves bit patterns exactly).
//!
//! The iteration itself is generic over a [`PdhgOperator`] so the digital
//! CSR path and the analog crossbar path (memlp-core) share one loop: the
//! operator is the only thing that differs between executing on spmv
//! microkernels and executing on quantized crossbar MVMs.

use memlp_linalg::{norm_est, ops, SparseMatrix};
use memlp_lp::{LpProblem, LpSolution, LpStatus};

use crate::budget::{Budget, BudgetCause};
use crate::pdip::PdipOptions;
use crate::LpSolver;

/// The matrix oracle PDHG iterates through: one forward and one
/// transposed MVM per iteration, with an MVM meter for cost accounting.
///
/// Implementations may be stateful (the analog path advances quantizer
/// and noise streams on every call), hence `&mut self`.
pub trait PdhgOperator {
    /// Number of constraints `m`.
    fn rows(&self) -> usize;
    /// Number of variables `n`.
    fn cols(&self) -> usize;
    /// `A·x` (length `m`).
    fn apply(&mut self, x: &[f64]) -> Vec<f64>;
    /// `Aᵀ·y` (length `n`).
    fn apply_transposed(&mut self, y: &[f64]) -> Vec<f64>;
    /// `A·x` into a caller-owned buffer. The iteration loop hoists its
    /// product vectors and drives this, so an operator that can compute
    /// in place (the CSR path) performs zero per-iteration allocations;
    /// the default forwards to [`apply`](PdhgOperator::apply) for
    /// operators whose pipeline allocates anyway (the analog converters).
    /// Must be bitwise identical to the allocating variant.
    fn apply_into(&mut self, x: &[f64], out: &mut Vec<f64>) {
        *out = self.apply(x);
    }
    /// `Aᵀ·y` into a caller-owned buffer; see
    /// [`apply_into`](PdhgOperator::apply_into).
    fn apply_transposed_into(&mut self, y: &[f64], out: &mut Vec<f64>) {
        *out = self.apply_transposed(y);
    }
    /// Total MVMs performed so far (forward + transposed).
    fn mvms(&self) -> u64;
}

/// Digital [`PdhgOperator`]: CSR spmv microkernels over the problem's
/// sparse constraint matrix.
pub struct CsrOperator<'a> {
    a: &'a SparseMatrix,
    mvms: u64,
}

impl<'a> CsrOperator<'a> {
    /// Wraps a CSR matrix.
    pub fn new(a: &'a SparseMatrix) -> Self {
        CsrOperator { a, mvms: 0 }
    }
}

impl PdhgOperator for CsrOperator<'_> {
    fn rows(&self) -> usize {
        self.a.rows()
    }

    fn cols(&self) -> usize {
        self.a.cols()
    }

    fn apply(&mut self, x: &[f64]) -> Vec<f64> {
        self.mvms += 1;
        self.a.matvec(x)
    }

    fn apply_transposed(&mut self, y: &[f64]) -> Vec<f64> {
        self.mvms += 1;
        self.a.matvec_transposed(y)
    }

    fn apply_into(&mut self, x: &[f64], out: &mut Vec<f64>) {
        self.mvms += 1;
        out.resize(self.a.rows(), 0.0);
        self.a.matvec_into(x, out);
    }

    fn apply_transposed_into(&mut self, y: &[f64], out: &mut Vec<f64>) {
        self.mvms += 1;
        out.resize(self.a.cols(), 0.0);
        self.a.matvec_transposed_into(y, out);
    }

    fn mvms(&self) -> u64 {
        self.mvms
    }
}

/// Options for the restarted PDHG iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdhgOptions {
    /// Primal infeasibility tolerance (relative to `1 + ‖b‖∞`), on
    /// `‖(Ax − b)₊‖∞`.
    pub eps_primal: f64,
    /// Dual infeasibility tolerance (relative to `1 + ‖c‖∞`), on
    /// `‖(c − Aᵀy)₊‖∞`.
    pub eps_dual: f64,
    /// Gap tolerance (relative to `1 + |cᵀx| + |bᵀy|`), on `|cᵀx − bᵀy|`.
    pub eps_gap: f64,
    /// Iterate-magnitude bound `Ω`: `‖y‖∞ > Ω` certifies primal
    /// infeasibility, `‖x‖∞ > Ω` primal unboundedness (same mapping as
    /// PDIP's §3.1 test).
    pub divergence_bound: f64,
    /// Maximum iterations. First-order methods trade per-iteration cost
    /// for iteration count, so this is orders of magnitude above the
    /// PDIP default.
    pub max_iterations: usize,
    /// KKT evaluation cadence in iterations; termination, restarts, and
    /// trace samples all happen at these checkpoints. Checkpoints reuse
    /// the iteration's own MVMs, so the cadence trades latency of
    /// detection against bookkeeping only.
    pub check_every: usize,
    /// Sufficient-decay factor for adaptive restarts: restart when the
    /// best candidate KKT score has dropped below `β ×` the score at the
    /// last restart.
    pub restart_beta: f64,
    /// Force a restart after this many checkpoints without one (the
    /// "artificial restart" that bounds the window length).
    pub restart_every: usize,
    /// Initial primal weight `ω` (τ/σ balance). Re-estimated at every
    /// restart from the observed movement ratio.
    pub initial_weight: f64,
    /// Floor applied to warm-start iterates, shared knob with
    /// [`PdipOptions::warm_start_floor`]: warm components are clamped to
    /// `[floor, ∞)`. Unlike the interior-point solvers, PDHG is a
    /// projection method — iterates on the boundary are healthy, and an
    /// identical repeat request warm-started from its own solution should
    /// converge within the first checkpoint window — so the default here
    /// is `0` (plain nonnegative projection). Raise it only when warm
    /// data drifts enough that a stale active set is worth perturbing;
    /// [`PdhgOptions::from_pdip`] copies the PDIP floor for matched runs.
    pub warm_start_floor: f64,
    /// Row-equilibrate the problem (`memlp_lp::equilibrate`) before
    /// iterating and unscale the duals on exit. First-order convergence
    /// degrades with the spread of row norms (the step sizes are global,
    /// set by `‖A‖₂`), so balancing `[A | b]` rows typically cuts the
    /// iteration count on lopsided problems; the analog backends get the
    /// same benefit plus better per-row conductance utilization. Applied
    /// by the solver entry points ([`PdhgSolver::solve_full`] and the
    /// crossbar PDHG solver), not by [`solve_with_operator`] — the
    /// operator there already embodies whatever scaling the caller chose.
    /// On by default; equilibration failure (overflow on a subnormal row
    /// maximum) falls back to the unscaled problem.
    pub equilibrate: bool,
}

impl Default for PdhgOptions {
    fn default() -> Self {
        PdhgOptions {
            eps_primal: 1e-8,
            eps_dual: 1e-8,
            eps_gap: 1e-8,
            divergence_bound: 1e6,
            max_iterations: 100_000,
            check_every: 16,
            restart_beta: 0.5,
            restart_every: 64,
            initial_weight: 1.0,
            warm_start_floor: 0.0,
            equilibrate: true,
        }
    }
}

impl PdhgOptions {
    /// Derives PDHG options from PDIP options: identical tolerances,
    /// divergence bound, and warm-start floor, so a PDHG verdict means
    /// the same thing as a PDIP verdict at the same settings. The
    /// iteration cap stays at the first-order default (PDIP iteration
    /// counts are not comparable).
    pub fn from_pdip(p: &PdipOptions) -> Self {
        PdhgOptions {
            eps_primal: p.eps_primal,
            eps_dual: p.eps_dual,
            eps_gap: p.eps_gap,
            divergence_bound: p.divergence_bound,
            warm_start_floor: p.warm_start_floor,
            ..PdhgOptions::default()
        }
    }
}

/// One KKT checkpoint sample, for trace mirroring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdhgSample {
    /// Iteration the checkpoint was evaluated at (1-based).
    pub iteration: usize,
    /// Relative primal infeasibility `‖(Ax − b)₊‖∞ / (1 + ‖b‖∞)`.
    pub primal: f64,
    /// Relative dual infeasibility `‖(c − Aᵀy)₊‖∞ / (1 + ‖c‖∞)`.
    pub dual: f64,
    /// Relative objective gap `|cᵀx − bᵀy| / (1 + |cᵀx| + |bᵀy|)`.
    pub gap: f64,
    /// `true` if a restart fired at this checkpoint.
    pub restarted: bool,
}

/// Aggregate statistics of one PDHG run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PdhgStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Restarts taken (adaptive + artificial).
    pub restarts: usize,
    /// MVMs the operator performed (forward + transposed).
    pub mvms: u64,
    /// ‖A‖₂ estimate the step sizes were derived from.
    pub sigma: f64,
    /// Final (best) KKT score `max(pr/εp, dr/εd, gap/εg)`; ≤ 1 means
    /// converged.
    pub score: f64,
    /// Buffer allocations the iteration loop performed — the setup-time
    /// iterate, product, window-sum and scratch vectors. Everything the
    /// hot loop touches is hoisted into these, so the count is a
    /// function of the problem shape only, *independent of the iteration
    /// count* (the regression tests pin this); operator-internal
    /// allocations (e.g. the analog converter pipeline) are not counted.
    pub alloc_events: u64,
    /// KKT checkpoint samples in order.
    pub samples: Vec<PdhgSample>,
}

/// Outcome of [`solve_with_operator`]: the solution, the budget cause if
/// the run was cut short, and the run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PdhgOutcome {
    /// Final solution (best KKT iterate observed).
    pub solution: LpSolution,
    /// Budget cause when the run degraded, `None` on a natural exit.
    pub cause: Option<BudgetCause>,
    /// Run statistics.
    pub stats: PdhgStats,
}

/// The restarted PDHG solver over the digital CSR path.
///
/// For the analog path, memlp-core wraps crossbar MVMs in a
/// [`PdhgOperator`] and drives the same loop through
/// [`solve_with_operator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PdhgSolver {
    options: PdhgOptions,
}

impl PdhgSolver {
    /// Creates the solver with explicit options.
    pub fn new(options: PdhgOptions) -> Self {
        PdhgSolver { options }
    }

    /// Creates the solver with tolerances derived from PDIP options.
    pub fn matching(pdip: &PdipOptions) -> Self {
        PdhgSolver {
            options: PdhgOptions::from_pdip(pdip),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> &PdhgOptions {
        &self.options
    }

    /// Full-control entry point: digital CSR operator, optional warm
    /// start, budget, and access to the run statistics.
    ///
    /// With [`PdhgOptions::equilibrate`] set the problem is row-scaled
    /// first, warm duals are carried *into* the scaled space
    /// (`y_scaled = y·s`), and on exit the duals are unscaled and the
    /// residual fields recomputed against the original problem.
    pub fn solve_full(
        &self,
        lp: &LpProblem,
        budget: Budget<'_>,
        warm: Option<(&[f64], &[f64])>,
    ) -> PdhgOutcome {
        if self.options.equilibrate {
            if let Ok((scaled, eq)) = memlp_lp::equilibrate(lp) {
                let warm_y: Option<Vec<f64>> = warm.map(|(_, y0)| scale_duals(y0, &eq.row_scales));
                let warm_scaled = match (warm, &warm_y) {
                    (Some((x0, _)), Some(ys)) => Some((x0, ys.as_slice())),
                    _ => None,
                };
                let a = scaled.sparse_a();
                let est = norm_est::spectral_norm(a);
                let sigma = est.safe_sigma(norm_est::upper_bound(a));
                let mut op = CsrOperator::new(a);
                let mut out = solve_with_operator(
                    &scaled,
                    &mut op,
                    sigma,
                    &self.options,
                    budget,
                    warm_scaled,
                );
                out.solution.y = eq.unscale_duals(&out.solution.y);
                rescore(lp, &mut out.solution);
                return out;
            }
        }
        let a = lp.sparse_a();
        let est = norm_est::spectral_norm(a);
        let sigma = est.safe_sigma(norm_est::upper_bound(a));
        let mut op = CsrOperator::new(a);
        solve_with_operator(lp, &mut op, sigma, &self.options, budget, warm)
    }
}

/// Carries original-space duals *into* a row-equilibrated problem:
/// scaling row i by `1/s_i` multiplies its dual by `s_i`.
pub fn scale_duals(y: &[f64], row_scales: &[f64]) -> Vec<f64> {
    y.iter().zip(row_scales).map(|(y, s)| y * s).collect()
}

/// Recomputes an [`LpSolution`]'s residual, objective and gap fields
/// digitally against `lp` (one CSR spmv pair, the same quantities the
/// loop's own exit path fills in). Used after dual unscaling so a
/// solution solved in equilibrated space reports residuals of the
/// problem the caller posed.
pub fn rescore(lp: &LpProblem, sol: &mut LpSolution) {
    let ax = lp.sparse_a().matvec(&sol.x);
    let aty = lp.sparse_a().matvec_transposed(&sol.y);
    let mut pr = 0.0f64;
    for (axi, bi) in ax.iter().zip(lp.b()) {
        pr = pr.max(axi - bi);
    }
    let mut dr = 0.0f64;
    for (ci, atyi) in lp.c().iter().zip(&aty) {
        dr = dr.max(ci - atyi);
    }
    sol.primal_residual = pr;
    sol.dual_residual = dr;
    sol.objective = lp.objective(&sol.x);
    sol.duality_gap = (sol.objective - ops::dot(lp.b(), &sol.y)).abs();
}

impl LpSolver for PdhgSolver {
    fn solve(&self, lp: &LpProblem) -> LpSolution {
        self.solve_full(lp, Budget::none(), None).solution
    }

    fn solve_budgeted(
        &self,
        lp: &LpProblem,
        budget: Budget<'_>,
    ) -> (LpSolution, Option<BudgetCause>) {
        let out = self.solve_full(lp, budget, None);
        (out.solution, out.cause)
    }

    fn name(&self) -> &'static str {
        "pdhg"
    }
}

/// Relative KKT residuals `(primal, dual, gap)` of a candidate `(x, y)`
/// recomputed digitally against the true problem data — one CSR spmv
/// pair, same normalization as the loop's own checkpoints.
///
/// Analog backends terminate on residuals estimated *through the array
/// readout*, which carries quantization and read noise: a converged
/// iterate can satisfy the true KKT system while its measured residuals
/// hover at the readout noise floor. This digital check is the arbiter
/// such backends use to confirm (or refuse) a verdict.
pub fn digital_kkt(lp: &LpProblem, x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    let a = lp.sparse_a();
    let ax = a.matvec(x);
    let aty = a.matvec_transposed(y);
    kkt_with_products(lp, x, y, &ax, &aty)
}

/// Relative KKT residuals of `(x, y)` from externally computed products
/// `Ax` and `Aᵀy`, with the loop's checkpoint normalization.
///
/// Analog backends pass products evaluated against their *realized*
/// matrices (the controller's read-verify view of the programmed state)
/// to judge convergence on the operator the loop actually drives, free
/// of per-drive readout noise.
pub fn kkt_with_products(
    lp: &LpProblem,
    x: &[f64],
    y: &[f64],
    ax: &[f64],
    aty: &[f64],
) -> (f64, f64, f64) {
    let bnorm = 1.0 + ops::inf_norm(lp.b());
    let cnorm = 1.0 + ops::inf_norm(lp.c());
    kkt(lp, x, y, ax, aty, bnorm, cnorm)
}

/// Relative KKT residuals of `(x, y)` given precomputed `Ax` and `Aᵀy`.
fn kkt(
    lp: &LpProblem,
    x: &[f64],
    y: &[f64],
    ax: &[f64],
    aty: &[f64],
    bnorm: f64,
    cnorm: f64,
) -> (f64, f64, f64) {
    let mut pr = 0.0f64;
    for (axi, bi) in ax.iter().zip(lp.b()) {
        pr = pr.max(axi - bi);
    }
    let mut dr = 0.0f64;
    for (ci, atyi) in lp.c().iter().zip(aty) {
        dr = dr.max(ci - atyi);
    }
    let pobj = ops::dot(lp.c(), x);
    let dobj = ops::dot(lp.b(), y);
    let gap = (pobj - dobj).abs() / (1.0 + pobj.abs() + dobj.abs());
    (pr / bnorm, dr / cnorm, gap)
}

/// Runs the restarted PDHG loop over an arbitrary [`PdhgOperator`].
///
/// `sigma` is the step-size norm (a safe upper estimate of `‖A‖₂`, e.g.
/// [`norm_est::NormEstimate::safe_sigma`]); `warm` optionally seeds the
/// iterate from a previous solution, clamped to
/// [`PdhgOptions::warm_start_floor`]. The budget is polled once per
/// iteration; on expiry the best-so-far iterate is returned with
/// `LpStatus::IterationLimit` and the cause, exactly like the PDIP
/// solvers.
pub fn solve_with_operator(
    lp: &LpProblem,
    op: &mut dyn PdhgOperator,
    sigma: f64,
    opts: &PdhgOptions,
    budget: Budget<'_>,
    warm: Option<(&[f64], &[f64])>,
) -> PdhgOutcome {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    debug_assert_eq!(op.cols(), n);
    debug_assert_eq!(op.rows(), m);
    let bnorm = 1.0 + ops::inf_norm(lp.b());
    let cnorm = 1.0 + ops::inf_norm(lp.c());
    // A zero matrix still admits the trivial saddle point; guard the
    // division rather than special-casing upstream.
    let norm = if sigma > 0.0 && sigma.is_finite() {
        sigma
    } else {
        1.0
    };
    let check_every = opts.check_every.max(1);

    // Every buffer the hot loop touches is allocated here, once — the
    // loop body itself performs no allocations (`stats.alloc_events`
    // measures exactly these sites, so the regression tests can pin the
    // count independent of the iteration count).
    let mut alloc_events = 0u64;
    let (mut x, mut y) = match warm {
        Some((x0, y0)) => {
            let floor = opts.warm_start_floor.max(0.0);
            (
                x0.iter().map(|&v| v.max(floor)).collect::<Vec<f64>>(),
                y0.iter().map(|&v| v.max(floor)).collect::<Vec<f64>>(),
            )
        }
        None => (vec![0.0; n], vec![0.0; m]),
    };
    alloc_events += 2;
    // PDLP weight convention: τ = 1/(ω·‖A‖), σ = ω/‖A‖, so a larger ω
    // (dual movement dominating) buys larger dual steps.
    let mut omega = opts.initial_weight.max(1e-6);
    let mut tau = 1.0 / (omega * norm);
    let mut sig = omega / norm;

    let mut ax = op.apply(&x);
    let mut aty = op.apply_transposed(&y);
    alloc_events += 2;

    let mut stats = PdhgStats {
        sigma: norm,
        ..PdhgStats::default()
    };
    // Best-iterate tracking mirrors the crossbar PDIP controller: the
    // analog operator gives residuals a noise floor, so the loop keeps
    // the best observed checkpoint and returns it on any exit.
    let mut best_x = x.clone();
    let mut best_y = y.clone();
    let mut best_score = f64::INFINITY;
    // Restart-window state: anchor iterate, running sums for the window
    // average (A·avg comes for free by linearity), and the score at the
    // last restart for the sufficient-decay test.
    let mut anchor_x = x.clone();
    let mut anchor_y = y.clone();
    let mut restart_score = f64::INFINITY;
    let mut checks_since_restart = 0usize;
    let mut sum_x = vec![0.0f64; n];
    let mut sum_y = vec![0.0f64; m];
    let mut sum_ax = vec![0.0f64; m];
    let mut sum_aty = vec![0.0f64; n];
    alloc_events += 8;
    let mut window = 0usize;
    // Step scratch (double-buffered iterates and products, swapped each
    // iteration) and the checkpoint window-average temporaries.
    let mut x_next = vec![0.0f64; n];
    let mut y_next = vec![0.0f64; m];
    let mut ax_next = vec![0.0f64; m];
    let mut aty_next = vec![0.0f64; n];
    let mut avg_x = vec![0.0f64; n];
    let mut avg_y = vec![0.0f64; m];
    let mut avg_ax = vec![0.0f64; m];
    let mut avg_aty = vec![0.0f64; n];
    alloc_events += 8;

    let mut status: Option<LpStatus> = None;
    let mut cause: Option<BudgetCause> = None;
    let mut iterations = 0usize;

    for iter in 0..opts.max_iterations {
        if let Some(c) = budget.check(iter) {
            status = Some(LpStatus::IterationLimit);
            cause = Some(c);
            break;
        }
        iterations = iter + 1;

        // Primal step + extrapolated dual step, computed into the hoisted
        // double buffers and swapped in — no per-iteration allocations.
        for j in 0..n {
            x_next[j] = (x[j] + tau * (lp.c()[j] - aty[j])).max(0.0);
        }
        op.apply_into(&x_next, &mut ax_next);
        for i in 0..m {
            let axbar = 2.0 * ax_next[i] - ax[i];
            y_next[i] = (y[i] + sig * (axbar - lp.b()[i])).max(0.0);
        }
        op.apply_transposed_into(&y_next, &mut aty_next);

        std::mem::swap(&mut x, &mut x_next);
        std::mem::swap(&mut y, &mut y_next);
        std::mem::swap(&mut ax, &mut ax_next);
        std::mem::swap(&mut aty, &mut aty_next);
        for j in 0..n {
            sum_x[j] += x[j];
            sum_aty[j] += aty[j];
        }
        for i in 0..m {
            sum_y[i] += y[i];
            sum_ax[i] += ax[i];
        }
        window += 1;

        let last = iter + 1 == opts.max_iterations;
        if (iter + 1) % check_every != 0 && !last {
            continue;
        }

        // ---- checkpoint ----
        if !(ops::all_finite(&x) && ops::all_finite(&y)) {
            status = Some(LpStatus::NumericalFailure);
            break;
        }
        if ops::inf_norm(&y) > opts.divergence_bound {
            status = Some(LpStatus::Infeasible);
            break;
        }
        if ops::inf_norm(&x) > opts.divergence_bound {
            status = Some(LpStatus::Unbounded);
            break;
        }
        let (pr, dr, gap) = kkt(lp, &x, &y, &ax, &aty, bnorm, cnorm);
        let score = (pr / opts.eps_primal)
            .max(dr / opts.eps_dual)
            .max(gap / opts.eps_gap);
        if score < best_score {
            best_score = score;
            best_x.clone_from(&x);
            best_y.clone_from(&y);
        }
        if !restart_score.is_finite() {
            restart_score = score;
        }
        checks_since_restart += 1;
        let mut restarted = false;

        if score <= 1.0 {
            stats.samples.push(PdhgSample {
                iteration: iterations,
                primal: pr,
                dual: dr,
                gap,
                restarted: false,
            });
            status = Some(LpStatus::Optimal);
            break;
        }

        // Window average candidate (linearity gives A·avg from the sums),
        // computed into the hoisted average buffers.
        let inv = 1.0 / window as f64;
        let avg_score = if window > 1 {
            for (o, v) in avg_x.iter_mut().zip(&sum_x) {
                *o = v * inv;
            }
            for (o, v) in avg_y.iter_mut().zip(&sum_y) {
                *o = v * inv;
            }
            for (o, v) in avg_ax.iter_mut().zip(&sum_ax) {
                *o = v * inv;
            }
            for (o, v) in avg_aty.iter_mut().zip(&sum_aty) {
                *o = v * inv;
            }
            let (apr, adr, agap) = kkt(lp, &avg_x, &avg_y, &avg_ax, &avg_aty, bnorm, cnorm);
            let s = (apr / opts.eps_primal)
                .max(adr / opts.eps_dual)
                .max(agap / opts.eps_gap);
            Some(s)
        } else {
            None
        };
        let candidate_score = avg_score.map_or(score, |s| s.min(score));
        let decayed = candidate_score <= opts.restart_beta * restart_score;
        let overdue = checks_since_restart >= opts.restart_every.max(1);
        if decayed || overdue {
            // Jump to the better of current iterate and window average.
            if let Some(s) = avg_score {
                if s < score {
                    x.copy_from_slice(&avg_x);
                    y.copy_from_slice(&avg_y);
                    op.apply_into(&x, &mut ax);
                    op.apply_transposed_into(&y, &mut aty);
                }
            }
            // Re-balance the primal weight from the window movement
            // (PDLP's adaptive rule, geometrically damped and clamped).
            let dx = dist2(&x, &anchor_x).max(1e-10);
            let dy = dist2(&y, &anchor_y).max(1e-10);
            if dx > 1e-10 || dy > 1e-10 {
                let ratio = (dy / dx).sqrt();
                let blended = (omega.ln() * 0.5 + ratio.ln() * 0.5).exp();
                omega = blended.clamp(omega * 0.25, omega * 4.0).clamp(1e-3, 1e3);
                tau = 1.0 / (omega * norm);
                sig = omega / norm;
            }
            anchor_x.clone_from(&x);
            anchor_y.clone_from(&y);
            restart_score = candidate_score.min(score);
            checks_since_restart = 0;
            for v in sum_x.iter_mut() {
                *v = 0.0;
            }
            for v in sum_y.iter_mut() {
                *v = 0.0;
            }
            for v in sum_ax.iter_mut() {
                *v = 0.0;
            }
            for v in sum_aty.iter_mut() {
                *v = 0.0;
            }
            window = 0;
            stats.restarts += 1;
            restarted = true;
        }

        stats.samples.push(PdhgSample {
            iteration: iterations,
            primal: pr,
            dual: dr,
            gap,
            restarted,
        });
    }

    let status = match status {
        Some(s) => s,
        None => LpStatus::IterationLimit,
    };
    // Any non-natural exit reports the best observed iterate.
    let (fx, fy) = if matches!(status, LpStatus::Optimal) || !best_score.is_finite() {
        (x, y)
    } else {
        (best_x, best_y)
    };
    stats.iterations = iterations;
    stats.mvms = op.mvms();
    stats.alloc_events = alloc_events;
    stats.score = if matches!(status, LpStatus::Optimal) {
        // Recompute nothing: the converged checkpoint's score is ≤ 1 by
        // construction; keep the best observed for reporting.
        best_score.min(1.0)
    } else {
        best_score
    };

    let solution = finish(lp, fx, fy, status, iterations);
    PdhgOutcome {
        solution,
        cause,
        stats,
    }
}

/// Squared-free Euclidean distance `‖a − b‖₂`.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Builds the final [`LpSolution`]: residual fields carry the PDHG KKT
/// quantities (`‖(Ax−b)₊‖∞`, `‖(c−Aᵀy)₊‖∞`, `|cᵀx − bᵀy|`), the
/// first-order analogues of the PDIP slack residuals.
fn finish(
    lp: &LpProblem,
    x: Vec<f64>,
    y: Vec<f64>,
    status: LpStatus,
    iterations: usize,
) -> LpSolution {
    let ax = lp.sparse_a().matvec(&x);
    let aty = lp.sparse_a().matvec_transposed(&y);
    let mut pr = 0.0f64;
    for (axi, bi) in ax.iter().zip(lp.b()) {
        pr = pr.max(axi - bi);
    }
    let mut dr = 0.0f64;
    for (ci, atyi) in lp.c().iter().zip(&aty) {
        dr = dr.max(ci - atyi);
    }
    let objective = lp.objective(&x);
    let gap = (objective - ops::dot(lp.b(), &y)).abs();
    LpSolution {
        status,
        objective,
        iterations,
        primal_residual: pr,
        dual_residual: dr,
        duality_gap: gap,
        x,
        y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::IterationDeadline;
    use crate::NormalEqPdip;
    use memlp_linalg::Matrix;
    use memlp_lp::generator::RandomLp;

    fn sample() -> LpProblem {
        LpProblem::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap(),
            vec![4.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap()
    }

    fn loose() -> PdhgOptions {
        PdhgOptions {
            eps_primal: 1e-6,
            eps_dual: 1e-6,
            eps_gap: 1e-6,
            ..PdhgOptions::default()
        }
    }

    #[test]
    fn solves_the_sample_lp() {
        let lp = sample();
        let sol = PdhgSolver::new(loose()).solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        // Optimum: x = (8/5, 6/5), obj = 14/5.
        assert!((sol.objective - 2.8).abs() < 1e-4, "obj {}", sol.objective);
    }

    #[test]
    fn matches_pdip_on_random_lps() {
        for seed in [3u64, 7, 21] {
            let lp = RandomLp::paper(12, seed).feasible();
            let reference = NormalEqPdip::default().solve(&lp);
            let sol = PdhgSolver::new(loose()).solve(&lp);
            assert_eq!(sol.status, LpStatus::Optimal, "seed {seed}");
            let denom = reference.objective.abs().max(1.0);
            assert!(
                (sol.objective - reference.objective).abs() / denom < 1e-3,
                "seed {seed}: pdhg {} vs pdip {}",
                sol.objective,
                reference.objective
            );
        }
    }

    #[test]
    fn detects_unbounded() {
        // max x, no binding constraint in the growth direction.
        let lp =
            LpProblem::new(Matrix::from_rows(&[&[-1.0]]).unwrap(), vec![1.0], vec![1.0]).unwrap();
        let sol = PdhgSolver::new(PdhgOptions {
            divergence_bound: 1e3,
            ..loose()
        })
        .solve(&lp);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn budget_none_matches_unbudgeted_bitwise() {
        let lp = RandomLp::paper(10, 5).feasible();
        let solver = PdhgSolver::new(loose());
        let plain = solver.solve(&lp);
        let (budgeted, cause) = solver.solve_budgeted(&lp, Budget::none());
        assert!(cause.is_none());
        assert_eq!(plain.status, budgeted.status);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain.x), bits(&budgeted.x));
        assert_eq!(bits(&plain.y), bits(&budgeted.y));
    }

    #[test]
    fn budget_cuts_short_with_best_iterate() {
        let lp = RandomLp::paper(10, 5).feasible();
        let solver = PdhgSolver::new(loose());
        let (sol, cause) = solver.solve_budgeted(&lp, Budget::none().with_max_iters(40));
        assert_eq!(sol.status, LpStatus::IterationLimit);
        assert_eq!(cause, Some(BudgetCause::MaxIters));
        assert!(sol.iterations <= 40);
        // Deadline variant.
        let dl = IterationDeadline::new(8);
        let (_, cause) = solver.solve_budgeted(&lp, Budget::none().with_deadline(&dl));
        assert_eq!(cause, Some(BudgetCause::DeadlineExceeded));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let lp = RandomLp::paper(14, 9).feasible();
        let solver = PdhgSolver::new(loose());
        let cold = solver.solve_full(&lp, Budget::none(), None);
        assert_eq!(cold.solution.status, LpStatus::Optimal);
        let warm = solver.solve_full(
            &lp,
            Budget::none(),
            Some((&cold.solution.x, &cold.solution.y)),
        );
        assert_eq!(warm.solution.status, LpStatus::Optimal);
        assert!(
            warm.stats.iterations <= cold.stats.iterations,
            "warm {} > cold {}",
            warm.stats.iterations,
            cold.stats.iterations
        );
    }

    #[test]
    fn hot_loop_allocations_are_iteration_independent() {
        let lp = RandomLp::paper(14, 9).feasible();
        let solver = PdhgSolver::new(loose());
        let short = solver.solve_full(&lp, Budget::none().with_max_iters(8), None);
        let long = solver.solve_full(&lp, Budget::none(), None);
        assert!(
            long.stats.iterations > short.stats.iterations,
            "need runs of different length: {} vs {}",
            long.stats.iterations,
            short.stats.iterations
        );
        // Every loop buffer is hoisted: the allocation count is a shape
        // constant, not a per-iteration cost.
        assert_eq!(short.stats.alloc_events, long.stats.alloc_events);
        assert_eq!(long.stats.alloc_events, 20);
    }

    #[test]
    fn equilibrated_solve_matches_unscaled_and_unscales_duals() {
        // Lopsided row scales: row 0 is ×1000 the sample problem's.
        let lp = LpProblem::new(
            Matrix::from_rows(&[&[1000.0, 2000.0], &[3.0, 1.0]]).unwrap(),
            vec![4000.0, 6.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let on = PdhgSolver::new(loose()).solve_full(&lp, Budget::none(), None);
        let off = PdhgSolver::new(PdhgOptions {
            equilibrate: false,
            ..loose()
        })
        .solve_full(&lp, Budget::none(), None);
        assert_eq!(on.solution.status, LpStatus::Optimal);
        assert!(
            (on.solution.objective - 2.8).abs() < 1e-3,
            "obj {}",
            on.solution.objective
        );
        // Duals come back in the original row scaling: strong duality
        // must hold against the *original* b, not the scaled one.
        let dual_obj = on.solution.y[0] * 4000.0 + on.solution.y[1] * 6.0;
        assert!(
            (dual_obj - on.solution.objective).abs() < 1e-3,
            "bᵀy {dual_obj}"
        );
        // The scaling is the tractability: the unscaled run needs more
        // iterations on the lopsided rows (at these tolerances it stalls
        // in its iteration budget entirely).
        assert!(
            off.solution.status != LpStatus::Optimal || off.stats.iterations > on.stats.iterations,
            "unscaled: {:?} in {} iters vs equilibrated {}",
            off.solution.status,
            off.stats.iterations,
            on.stats.iterations
        );
    }

    #[test]
    fn stats_meter_counts_mvms() {
        let lp = sample();
        let out = PdhgSolver::new(loose()).solve_full(&lp, Budget::none(), None);
        // Two seed MVMs plus two per iteration (checkpoints are free).
        assert!(out.stats.mvms >= 2 * out.stats.iterations as u64);
        assert!(out.stats.sigma > 0.0);
        assert!(!out.stats.samples.is_empty());
    }
}
